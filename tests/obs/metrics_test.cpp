// Metrics registry semantics and the cross-backend counter contract: the
// obs counters are not best-effort telemetry — for the exhaustive backends
// they must equal the ExplorerStats the checker reports, exactly, at every
// thread count. A drifting counter means the flush-at-batch-boundary
// bookkeeping lost deltas, which this suite is designed to catch.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "check/check.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"

namespace rcons::obs {
namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

// --- registry primitives ---------------------------------------------------

TEST(MetricsRegistryTest, CounterAggregatesLanesAndWrapsHighIds) {
  MetricsRegistry registry(4);
  Counter& counter = registry.counter("engine.visited_states");
  counter.add(0, 10);
  counter.add(1, 5);
  counter.add(3, 1);
  counter.add(7, 2);  // 7 % 4 == 3: wraps, still counted
  EXPECT_EQ(counter.total(), 18u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWinsAndIsSigned) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("engine.frontier_pending");
  gauge.set(42);
  gauge.set(-3);
  EXPECT_EQ(gauge.value(), -3);
  const MetricsSnapshot snapshot = registry.snapshot();
  const MetricSample* sample = find_sample(snapshot, "engine.frontier_pending");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->kind, MetricKind::kGauge);
  EXPECT_EQ(sample->gauge_value(), -3);
}

TEST(MetricsRegistryTest, HistogramMergesCountSumMaxAcrossLanes) {
  MetricsRegistry registry(2);
  Histogram& histogram = registry.histogram("engine.batch_size");
  histogram.record(0, 0);
  histogram.record(0, 7);
  histogram.record(1, 1024);
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_EQ(histogram.sum(), 1031u);
  EXPECT_EQ(histogram.max(), 1024u);
  const std::vector<std::uint64_t> buckets = histogram.buckets();
  ASSERT_EQ(buckets.size(), Histogram::kBuckets);
  EXPECT_EQ(buckets[0], 1u);   // v == 0
  EXPECT_EQ(buckets[3], 1u);   // bit_width(7) == 3
  EXPECT_EQ(buckets[11], 1u);  // bit_width(1024) == 11
}

TEST(MetricsRegistryTest, HandlesAreStableAndGetOrCreateReturnsSame) {
  MetricsRegistry registry;
  Counter& first = registry.counter("store.nodes");
  Counter& second = registry.counter("store.nodes");
  EXPECT_EQ(&first, &second);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.counter("store.nodes").add(0, 1);
  registry.counter("check.probe_visited").add(0, 2);
  registry.gauge("engine.num_threads").set(4);
  const MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "check.probe_visited");
  EXPECT_EQ(snapshot[1].name, "engine.num_threads");
  EXPECT_EQ(snapshot[2].name, "store.nodes");
}

TEST(MetricsRegistryTest, ResetIsPrefixScopedAndKeepsHandlesValid) {
  MetricsRegistry registry;
  Counter& engine = registry.counter("engine.transitions");
  Counter& store = registry.counter("store.encodes");
  Gauge& portfolio = registry.gauge("portfolio.scenario_index");
  engine.add(0, 100);
  store.add(0, 7);
  portfolio.set(3);

  registry.reset("engine.");
  EXPECT_EQ(engine.total(), 0u);
  EXPECT_EQ(store.total(), 7u);
  EXPECT_EQ(portfolio.value(), 3);

  engine.add(0, 1);  // handle still live after reset
  EXPECT_EQ(engine.total(), 1u);

  registry.reset();  // empty prefix: everything
  EXPECT_EQ(store.total(), 0u);
  EXPECT_EQ(portfolio.value(), 0);
}

// --- the counter contract against the check facade -------------------------

check::CheckRequest team_request(int n, int crash_budget, bool symmetry = false) {
  auto type = typesys::make_type("Sn(" + std::to_string(n) + ")");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, n, kInputA, kInputB);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {kInputA, kInputB};
  if (symmetry) request.system.symmetry_classes = system.symmetry_classes;
  request.budget.crash_budget = crash_budget;
  return request;
}

// Deliberately broken consensus (write input, decide what you read) so the
// violating-run half of the contract is exercised too.
struct BrokenConsensus {
  sim::RegId reg = 0;
  typesys::Value input = 0;
  int pc = 0;

  sim::StepResult step(sim::Memory& memory) {
    if (pc == 0) {
      memory.write(reg, input);
      pc = 1;
      return sim::StepResult::running();
    }
    return sim::StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc); }
};

check::CheckRequest broken_request() {
  check::CheckRequest request;
  const sim::RegId reg = request.system.memory.add_register();
  request.system.processes.emplace_back(BrokenConsensus{reg, 1, 0});
  request.system.processes.emplace_back(BrokenConsensus{reg, 2, 0});
  request.system.properties.valid_outputs = {1, 2};
  request.budget.crash_budget = 0;
  return request;
}

std::uint64_t counter_value(const MetricsSnapshot& snapshot, std::string_view name) {
  const MetricSample* sample = find_sample(snapshot, name);
  EXPECT_NE(sample, nullptr) << "missing metric " << name;
  return sample == nullptr ? 0 : sample->value;
}

// Pins the contract the doc comments promise: metric totals equal the
// ExplorerStats values in the same report, and every transition of the
// unreduced graph falls in exactly one of {new state, duplicate, violating
// edge, orbit-skipped sibling} — the exactness invariant
//   transitions == visited + duplicates + violation_edges + orbit_skipped.
void expect_exhaustive_contract(const check::CheckReport& report) {
  const MetricsSnapshot& m = report.metrics;
  EXPECT_EQ(counter_value(m, "engine.visited_states"), report.stats.visited);
  EXPECT_EQ(counter_value(m, "engine.transitions"), report.stats.transitions);
  EXPECT_EQ(counter_value(m, "engine.decisions"), report.stats.decisions);
  EXPECT_EQ(counter_value(m, "engine.terminal_states"), report.stats.terminal_states);
  EXPECT_EQ(counter_value(m, "engine.orbit_skipped"), report.stats.orbit_skipped);
  EXPECT_EQ(counter_value(m, "engine.duplicates") +
                counter_value(m, "engine.violation_edges") +
                counter_value(m, "engine.orbit_skipped") + report.stats.visited,
            report.stats.transitions);
  if (report.stats.compact) {
    EXPECT_EQ(counter_value(m, "store.nodes"), report.stats.store.nodes);
    EXPECT_EQ(counter_value(m, "store.value_bytes"), report.stats.store.value_bytes);
    EXPECT_EQ(counter_value(m, "store.encodes"), report.stats.store.encodes);
    EXPECT_EQ(counter_value(m, "store.canonical_hits"),
              report.stats.store.canonical_hits);
    // The store interns the root before exploration counts it as visited.
    EXPECT_EQ(report.stats.store.nodes, report.stats.visited + 1);
  }
}

check::CheckReport run_with_registry(check::CheckRequest request,
                                     check::Strategy strategy, int num_threads,
                                     MetricsRegistry& registry) {
  request.strategy = strategy;
  request.num_threads = num_threads;
  request.obs.metrics = &registry;
  return check::check(std::move(request));
}

TEST(MetricsContractTest, SequentialDfsMatchesReportedStats) {
  MetricsRegistry registry;
  const check::CheckReport report = run_with_registry(
      team_request(2, 3), check::Strategy::kSequentialDFS, 0, registry);
  EXPECT_TRUE(report.clean);
  expect_exhaustive_contract(report);
  EXPECT_FALSE(report.metrics.empty());
}

TEST(MetricsContractTest, ParallelCountersEqualAcrossThreadCounts) {
  // The pinned scenario: Sn(2), n=2, crash budget 3 — a few thousand states,
  // deterministic state space. Every thread count must produce byte-identical
  // counter totals; a mismatch means a worker lost a flush.
  MetricsSnapshot baseline;
  sim::ExplorerStats baseline_stats;
  for (const int threads : {1, 2, 4, 8}) {
    MetricsRegistry registry;
    const check::CheckReport report = run_with_registry(
        team_request(2, 3), check::Strategy::kParallelBFS, threads, registry);
    EXPECT_TRUE(report.clean);
    expect_exhaustive_contract(report);
    if (baseline.empty()) {
      baseline = report.metrics;
      baseline_stats = report.stats;
      continue;
    }
    EXPECT_EQ(report.stats.visited, baseline_stats.visited) << threads << " threads";
    EXPECT_EQ(report.stats.transitions, baseline_stats.transitions);
    for (const char* name :
         {"engine.visited_states", "engine.transitions", "engine.decisions",
          "engine.terminal_states", "engine.duplicates", "engine.violation_edges",
          "store.nodes", "store.value_bytes"}) {
      EXPECT_EQ(counter_value(report.metrics, name), counter_value(baseline, name))
          << name << " diverged at " << threads << " threads";
    }
  }
}

TEST(MetricsContractTest, SymmetricInstanceCreditsOrbitSkipsExactly) {
  // With a symmetry declaration the orbit-aware expansion skips sibling
  // events; every skip must surface in engine.orbit_skipped AND keep the
  // exactness invariant (skips count as transitions of the unreduced graph).
  // Pinned at both exhaustive backends so the credit path of each is covered.
  for (const int threads : {0, 2}) {
    const check::Strategy strategy = threads == 0
                                         ? check::Strategy::kSequentialDFS
                                         : check::Strategy::kParallelBFS;
    MetricsRegistry registry;
    const check::CheckReport report =
        run_with_registry(team_request(4, 1, /*symmetry=*/true), strategy,
                          threads, registry);
    EXPECT_TRUE(report.clean) << check::strategy_name(strategy);
    expect_exhaustive_contract(report);
    EXPECT_GT(counter_value(report.metrics, "engine.orbit_skipped"), 0u)
        << check::strategy_name(strategy);
    // The lock-free table counters are registered (resolve creates the cells
    // up front) even when uncontended; sequential runs must report zero CAS
    // retries — there is nobody to lose a claim to.
    if (strategy == check::Strategy::kSequentialDFS) {
      EXPECT_EQ(counter_value(report.metrics, "engine.cas_retries"), 0u);
    }
  }
}

TEST(MetricsContractTest, ViolatingRunCountsItsEdges) {
  for (const check::Strategy strategy :
       {check::Strategy::kSequentialDFS, check::Strategy::kParallelBFS}) {
    MetricsRegistry registry;
    const check::CheckReport report =
        run_with_registry(broken_request(), strategy, 2, registry);
    EXPECT_FALSE(report.clean);
    EXPECT_GE(counter_value(report.metrics, "engine.violation_edges"), 1u)
        << check::strategy_name(strategy);
    expect_exhaustive_contract(report);
  }
}

TEST(MetricsContractTest, RandomizedPublishesRunTotals) {
  MetricsRegistry registry;
  check::CheckRequest request = team_request(2, 2);
  request.runs = 5;
  request.seed = 7;
  const check::CheckReport report =
      run_with_registry(std::move(request), check::Strategy::kRandomized, 0, registry);
  EXPECT_EQ(counter_value(report.metrics, "random.runs"),
            static_cast<std::uint64_t>(report.runs));
  EXPECT_EQ(counter_value(report.metrics, "random.steps"),
            static_cast<std::uint64_t>(report.total_steps));
  EXPECT_EQ(counter_value(report.metrics, "random.crashes"),
            static_cast<std::uint64_t>(report.total_crashes));
}

TEST(MetricsContractTest, ReplayPublishesScheduleTotals) {
  // Find a real violation first, then replay its schedule under a registry.
  check::CheckRequest find = broken_request();
  find.strategy = check::Strategy::kSequentialDFS;
  const check::CheckReport found = check::check(std::move(find));
  ASSERT_TRUE(found.violation.has_value());
  ASSERT_FALSE(found.violation->schedule.empty());

  MetricsRegistry registry;
  check::CheckRequest request = broken_request();
  request.schedule = found.violation->schedule;
  const check::CheckReport report =
      run_with_registry(std::move(request), check::Strategy::kReplay, 0, registry);
  EXPECT_EQ(counter_value(report.metrics, "replay.steps"),
            found.violation->schedule.size());
  EXPECT_GE(counter_value(report.metrics, "replay.violations"), 1u);
}

TEST(MetricsContractTest, AutoEscalationResetsProbePollution) {
  // A tiny probe limit forces kAuto to escalate; the engine totals must then
  // describe only the parallel run, with the probe's work preserved under
  // check.probe_visited.
  MetricsRegistry registry;
  check::CheckRequest request = team_request(2, 3);
  request.auto_probe_limit = 100;
  request.num_threads = 2;
  request.obs.metrics = &registry;
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  ASSERT_EQ(report.strategy, check::Strategy::kParallelBFS);
  expect_exhaustive_contract(report);
  // The probe may visit one state past its limit before noticing truncation.
  EXPECT_GT(counter_value(report.metrics, "check.probe_visited"), 0u);
  EXPECT_LE(counter_value(report.metrics, "check.probe_visited"), 101u);
}

TEST(MetricsContractTest, NoRegistryMeansEmptySnapshotInReport) {
  check::CheckRequest request = team_request(2, 1);
  request.strategy = check::Strategy::kSequentialDFS;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.metrics.empty());
}

}  // namespace
}  // namespace rcons::obs
