#include "engine/frontier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

namespace rcons::engine {
namespace {

std::unique_ptr<WorkItem> item_with_depth(std::size_t depth) {
  auto item = std::make_unique<WorkItem>();
  for (std::size_t i = 0; i < depth; ++i) {
    item->tail = std::make_shared<const PathLink>(
        PathLink{Event{Event::Kind::kStep, 0}, item->tail});
  }
  return item;
}

std::size_t depth_of(const WorkItem& item) {
  return materialize_path(item.tail.get()).size();
}

TEST(FrontierTest, LocalPopIsLifo) {
  Frontier frontier(2);
  frontier.push(0, item_with_depth(1));
  frontier.push(0, item_with_depth(2));
  frontier.push(0, item_with_depth(3));
  EXPECT_EQ(depth_of(*frontier.pop(0)), 3u);
  EXPECT_EQ(depth_of(*frontier.pop(0)), 2u);
  EXPECT_EQ(depth_of(*frontier.pop(0)), 1u);
  EXPECT_EQ(frontier.pop(0), nullptr);
}

TEST(FrontierTest, StealTakesOldestItemsInBatch) {
  Frontier frontier(2);
  for (std::size_t depth = 1; depth <= 8; ++depth) {
    frontier.push(0, item_with_depth(depth));
  }
  // Worker 1 is empty: its pop steals half of worker 0's deque from the
  // front (depths 1..4) and serves the most recent of the stolen batch.
  const auto stolen = frontier.pop(1);
  ASSERT_NE(stolen, nullptr);
  EXPECT_EQ(depth_of(*stolen), 4u);
  EXPECT_EQ(frontier.stats().steals, 1u);
  EXPECT_EQ(frontier.stats().stolen_items, 4u);
  // Worker 0 still owns the newest items.
  EXPECT_EQ(depth_of(*frontier.pop(0)), 8u);
}

TEST(FrontierTest, SingleWorkerNeverSteals) {
  Frontier frontier(1);
  frontier.push(0, item_with_depth(1));
  EXPECT_NE(frontier.pop(0), nullptr);
  EXPECT_EQ(frontier.pop(0), nullptr);
  EXPECT_EQ(frontier.stats().steals, 0u);
}

TEST(FrontierTest, ConcurrentPushPopLosesNothing) {
  constexpr int kWorkers = 4;
  constexpr int kItemsPerWorker = 5'000;
  Frontier frontier(kWorkers);
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w, &frontier, &popped] {
      for (int i = 0; i < kItemsPerWorker; ++i) {
        frontier.push(w, std::make_unique<WorkItem>());
      }
      // Drain greedily; stealing redistributes whatever is left elsewhere.
      while (frontier.pop(w) != nullptr) {
        popped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // A worker can observe momentary emptiness while another still holds
  // items, so drain the remainder single-threaded before counting.
  for (int w = 0; w < kWorkers; ++w) {
    while (frontier.pop(w) != nullptr) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  }
  EXPECT_EQ(popped.load(), kWorkers * kItemsPerWorker);
}

}  // namespace
}  // namespace rcons::engine
