#include "engine/frontier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/path_arena.hpp"

namespace rcons::engine {
namespace {

// Items are tagged by the depth of their path chain so tests can observe
// ordering; links come from an arena exactly as in the explorer.
WorkItem item_with_depth(PathArena& arena, std::size_t depth) {
  WorkItem item;
  for (std::size_t i = 0; i < depth; ++i) {
    item.tail = arena.add(Event{Event::Kind::kStep, 0}, item.tail);
  }
  return item;
}

std::size_t depth_of(const WorkItem& item) {
  return materialize_path(item.tail).size();
}

TEST(FrontierTest, LocalPopIsLifo) {
  PathArena arena;
  Frontier frontier(2);
  frontier.push(0, item_with_depth(arena, 1));
  frontier.push(0, item_with_depth(arena, 2));
  frontier.push(0, item_with_depth(arena, 3));
  WorkItem item;
  ASSERT_TRUE(frontier.pop(0, item));
  EXPECT_EQ(depth_of(item), 3u);
  ASSERT_TRUE(frontier.pop(0, item));
  EXPECT_EQ(depth_of(item), 2u);
  ASSERT_TRUE(frontier.pop(0, item));
  EXPECT_EQ(depth_of(item), 1u);
  EXPECT_FALSE(frontier.pop(0, item));
}

TEST(FrontierTest, PushBatchSubmitsUnderOneLockAndPopBatchDrainsNewestFirst) {
  PathArena arena;
  Frontier frontier(1);
  std::vector<WorkItem> batch;
  for (std::size_t depth = 1; depth <= 6; ++depth) {
    batch.push_back(item_with_depth(arena, depth));
  }
  frontier.push_batch(0, batch);
  EXPECT_EQ(frontier.stats().push_batches, 1u);
  EXPECT_EQ(frontier.stats().pushed_items, 6u);
  EXPECT_DOUBLE_EQ(frontier.stats().avg_push_batch(), 6.0);

  // pop_batch takes the newest items; consuming `out` back-to-front yields
  // the LIFO order 6, 5, 4.
  std::vector<WorkItem> out;
  ASSERT_EQ(frontier.pop_batch(0, out, 3), 3u);
  EXPECT_EQ(depth_of(out[0]), 4u);
  EXPECT_EQ(depth_of(out[1]), 5u);
  EXPECT_EQ(depth_of(out[2]), 6u);

  out.clear();
  ASSERT_EQ(frontier.pop_batch(0, out, 10), 3u);  // the remaining 1, 2, 3
  EXPECT_EQ(depth_of(out.back()), 3u);
  out.clear();
  EXPECT_EQ(frontier.pop_batch(0, out, 10), 0u);
}

TEST(FrontierTest, StealTakesOldestItemsInBatchDirectlyIntoOutput) {
  PathArena arena;
  Frontier frontier(2);
  std::vector<WorkItem> batch;
  for (std::size_t depth = 1; depth <= 8; ++depth) {
    batch.push_back(item_with_depth(arena, depth));
  }
  frontier.push_batch(0, batch);

  // Worker 1 is empty: its pop_batch steals half of worker 0's deque from
  // the front (depths 1..4), delivered straight into `out` — worker 1's own
  // deque never participates. Back-to-front consumption serves the most
  // recent of the stolen batch (depth 4) first.
  std::vector<WorkItem> out;
  ASSERT_EQ(frontier.pop_batch(1, out, 32), 4u);
  EXPECT_EQ(depth_of(out.front()), 1u);
  EXPECT_EQ(depth_of(out.back()), 4u);
  EXPECT_EQ(frontier.stats().steals, 1u);
  EXPECT_EQ(frontier.stats().stolen_items, 4u);

  // Worker 0 still owns the newest items.
  WorkItem item;
  ASSERT_TRUE(frontier.pop(0, item));
  EXPECT_EQ(depth_of(item), 8u);
}

TEST(FrontierTest, StealRespectsCallerCapacity) {
  PathArena arena;
  Frontier frontier(2);
  std::vector<WorkItem> batch;
  for (std::size_t depth = 1; depth <= 8; ++depth) {
    batch.push_back(item_with_depth(arena, depth));
  }
  frontier.push_batch(0, batch);

  // A single-item pop steals exactly one item (the victim's oldest); nothing
  // is dropped on the floor.
  WorkItem item;
  ASSERT_TRUE(frontier.pop(1, item));
  EXPECT_EQ(depth_of(item), 1u);
  EXPECT_EQ(frontier.stats().stolen_items, 1u);

  std::size_t remaining = 0;
  while (frontier.pop(0, item)) remaining += 1;
  EXPECT_EQ(remaining, 7u);
}

TEST(FrontierTest, SingleWorkerNeverSteals) {
  PathArena arena;
  Frontier frontier(1);
  frontier.push(0, item_with_depth(arena, 1));
  WorkItem item;
  EXPECT_TRUE(frontier.pop(0, item));
  EXPECT_FALSE(frontier.pop(0, item));
  EXPECT_EQ(frontier.stats().steals, 0u);
}

TEST(FrontierTest, ConcurrentBatchPushPopLosesNothing) {
  constexpr int kWorkers = 4;
  constexpr int kBatchesPerWorker = 500;
  constexpr std::size_t kBatchSize = 10;
  Frontier frontier(kWorkers);
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([w, &frontier, &popped] {
      std::vector<WorkItem> batch;
      std::vector<WorkItem> out;
      for (int i = 0; i < kBatchesPerWorker; ++i) {
        batch.assign(kBatchSize, WorkItem{});
        frontier.push_batch(w, batch);
      }
      // Drain greedily; stealing redistributes whatever is left elsewhere.
      for (;;) {
        out.clear();
        const std::size_t got = frontier.pop_batch(w, out, 7);
        if (got == 0) break;
        popped.fetch_add(static_cast<int>(got), std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // A worker can observe momentary emptiness while another still holds
  // items, so drain the remainder single-threaded before counting.
  std::vector<WorkItem> out;
  for (int w = 0; w < kWorkers; ++w) {
    for (;;) {
      out.clear();
      const std::size_t got = frontier.pop_batch(w, out, 64);
      if (got == 0) break;
      popped.fetch_add(static_cast<int>(got), std::memory_order_relaxed);
    }
  }
  // Relaxed is enough: workers joined above, so all fetch_adds happened-before.
  EXPECT_EQ(popped.load(std::memory_order_relaxed),
            kWorkers * kBatchesPerWorker * static_cast<int>(kBatchSize));
  EXPECT_EQ(frontier.stats().pushed_items, frontier.stats().popped_items);
}

}  // namespace
}  // namespace rcons::engine
