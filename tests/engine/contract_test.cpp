// Verifies the util/assert.hpp contract layer actually executes: a
// deliberately corrupted per-worker tally must trip the transitions-identity
// DCHECK and abort. In builds where DCHECKs compile out (NDEBUG without
// RCONS_FORCE_DCHECK — RelWithDebInfo, the TSan/ASan jobs) the death test is
// skipped; the static-analysis CI job builds Debug with
// -DRCONS_FORCE_DCHECK=ON so the abort is observed there.
#include "engine/parallel_explorer.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace rcons::engine {
namespace {

ParallelExplorer::WorkerStats consistent_stats() {
  ParallelExplorer::WorkerStats stats;
  stats.transitions = 10;
  stats.visited = 4;
  stats.duplicates = 3;
  stats.violation_edges = 2;
  stats.orbit_skipped = 1;
  return stats;
}

TEST(ContractTest, TransitionsIdentityHoldsOnConsistentStats) {
  // Must return without aborting in every build type.
  ParallelExplorer::dcheck_transitions_identity(consistent_stats());
}

TEST(ContractTest, TransitionsIdentityViolationAborts) {
#if RCONS_DCHECK_ENABLED
  ParallelExplorer::WorkerStats bad = consistent_stats();
  bad.duplicates += 1;  // one duplicate tallied without its transition
  EXPECT_DEATH(ParallelExplorer::dcheck_transitions_identity(bad),
               "transitions identity violated");
#else
  GTEST_SKIP() << "RCONS_DCHECK compiled out (NDEBUG build without "
                  "RCONS_FORCE_DCHECK); the static-analysis CI job runs this";
#endif
}

TEST(ContractTest, DcheckCompiledOutMatchesBuildType) {
  // RCONS_DCHECK must be free in NDEBUG builds unless explicitly forced —
  // the Release bench rows depend on it. This pins the enablement logic.
#if defined(NDEBUG) && !defined(RCONS_FORCE_DCHECK)
  EXPECT_EQ(RCONS_DCHECK_ENABLED, 0);
  bool evaluated = false;
  RCONS_DCHECK([&] {
    evaluated = true;
    return true;
  }());
  EXPECT_FALSE(evaluated) << "disabled RCONS_DCHECK must not evaluate its argument";
#else
  EXPECT_EQ(RCONS_DCHECK_ENABLED, 1);
#endif
}

TEST(ContractTest, UnreachableAbortsInAllBuildTypes) {
  EXPECT_DEATH(RCONS_UNREACHABLE("contract test"), "unreachable");
}

}  // namespace
}  // namespace rcons::engine
