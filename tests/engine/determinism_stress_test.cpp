// Determinism of the batched parallel hot path: on the corpus's violating
// instances (halting-TAS, register-race) and on a clean team-consensus
// instance, parallel exploration at t ∈ {1, 2, 4, 8} must report the
// identical lowest-trace violation and identical visited count — independent
// of thread count, batching, stealing, and the per-worker dedup caches — and
// must agree with the sequential DFS wherever the contract promises it:
// the verdict everywhere, every counter on clean instances (where both
// explorers do identical work). The two explorers' *violations* differ by
// design on instances with several violating edges: sequential DFS stops at
// the first violation its depth-first order meets, while the engine drains
// the graph and reports the globally lexicographically-lowest trace (on
// halting-TAS that is a validity violation down an all-step(p0) path, not
// the agreement violation the DFS trips over first).
//
// Doubles as the steady-state proof for the allocation-free hot path: the
// new ExplorerStats::hot counters must show avoided allocations and real
// batching on every parallel run.
#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/spec_system.hpp"
#include "check/violation_io.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"

namespace rcons::engine {
namespace {

const std::vector<int> kThreadCounts = {1, 2, 4, 8};

check::CheckReport run(const check::ScenarioSystem& system,
                       const check::Budget& budget, check::Strategy strategy,
                       int threads) {
  check::CheckRequest request;
  request.system = system;
  request.budget = budget;
  request.strategy = strategy;
  request.num_threads = threads;
  return check::check(std::move(request));
}

void expect_hot_path_engaged(const check::CheckReport& report) {
  // Steady-state proof: inline items + arena links replaced per-item heap
  // allocations, and successors were submitted in real batches.
  EXPECT_GT(report.stats.hot.allocations_avoided, 0u);
  EXPECT_GT(report.stats.hot.batches, 0u);
  EXPECT_GT(report.stats.hot.avg_batch(), 1.0);
  EXPECT_GT(report.stats.hot.probe_ops, 0u);
}

struct CorpusCase {
  std::string name;
  check::ScenarioSystem system;
  check::Budget budget;
};

std::vector<CorpusCase> corpus_cases() {
  std::vector<CorpusCase> cases;
  const auto dir = std::filesystem::path(RCONS_SOURCE_DIR) / "tests" / "corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".viol") continue;
    const check::ViolationParse parse =
        check::load_violation_file(entry.path().string());
    if (!parse.ok()) continue;
    CorpusCase corpus_case;
    corpus_case.name = entry.path().filename().string();
    corpus_case.system = check::build_spec_system(parse.file->scenario);
    corpus_case.budget.crash_model = parse.file->scenario.crash_model;
    corpus_case.budget.crash_budget = parse.file->scenario.crash_budget;
    if (parse.file->scenario.max_steps_per_run >= 0) {
      corpus_case.budget.max_steps_per_run = parse.file->scenario.max_steps_per_run;
    }
    cases.push_back(std::move(corpus_case));
  }
  return cases;
}

TEST(DeterminismStressTest, CorpusViolationsAreIdenticalAcrossThreadCounts) {
  const auto cases = corpus_cases();
  ASSERT_GE(cases.size(), 2u) << "corpus not seeded";

  for (const CorpusCase& corpus_case : cases) {
    SCOPED_TRACE(corpus_case.name);
    const check::CheckReport sequential = run(
        corpus_case.system, corpus_case.budget, check::Strategy::kSequentialDFS, 0);
    ASSERT_FALSE(sequential.clean);
    ASSERT_TRUE(sequential.violation.has_value());

    std::optional<sim::Violation> first;
    std::optional<std::uint64_t> first_visited;
    for (const int threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      const check::CheckReport parallel = run(
          corpus_case.system, corpus_case.budget, check::Strategy::kParallelBFS,
          threads);
      ASSERT_FALSE(parallel.clean);
      ASSERT_TRUE(parallel.violation.has_value());
      expect_hot_path_engaged(parallel);

      // The reported violation and the visited count are pinned across
      // thread counts: batching, stealing, and the per-worker caches must
      // not leak into what the engine reports. (Sequential stops at its
      // first violation, so its schedule and visited count are a different,
      // prefix-shaped object — only the verdict is comparable above.)
      if (!first.has_value()) {
        first = parallel.violation;
        first_visited = parallel.stats.visited;
      } else {
        EXPECT_EQ(parallel.violation->description, first->description);
        EXPECT_EQ(parallel.violation->schedule, first->schedule);
        EXPECT_EQ(parallel.stats.visited, *first_visited);
      }
    }
  }
}

TEST(DeterminismStressTest, CleanInstanceMatchesSequentialAtEveryThreadCount) {
  constexpr typesys::Value kInputA = 101;
  constexpr typesys::Value kInputB = 202;
  auto type = typesys::make_type("Sn(3)");
  ASSERT_NE(type, nullptr);
  rc::TeamConsensusSystem built =
      rc::make_team_consensus_system(*type, 3, kInputA, kInputB);
  check::ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = {kInputA, kInputB};
  check::Budget budget;
  budget.crash_budget = 2;

  const check::CheckReport sequential =
      run(system, budget, check::Strategy::kSequentialDFS, 0);
  ASSERT_TRUE(sequential.clean);
  ASSERT_TRUE(sequential.complete);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const check::CheckReport parallel =
        run(system, budget, check::Strategy::kParallelBFS, threads);
    EXPECT_TRUE(parallel.clean);
    EXPECT_TRUE(parallel.complete);
    EXPECT_EQ(parallel.stats.visited, sequential.stats.visited);
    EXPECT_EQ(parallel.stats.transitions, sequential.stats.transitions);
    EXPECT_EQ(parallel.stats.decisions, sequential.stats.decisions);
    EXPECT_EQ(parallel.stats.terminal_states, sequential.stats.terminal_states);
    expect_hot_path_engaged(parallel);
  }
}

TEST(DeterminismStressTest, SymmetryReductionIsDeterministicAcrossThreadCounts) {
  // The orbit-aware expansion (one representative event per stabilizer orbit)
  // must not disturb determinism: on a symmetric instance the sequential DFS
  // and every parallel thread count agree on the reduced visited count, the
  // transition total, and the clean verdict. The orbit_skipped tally itself
  // is NOT pinned across backends: the orbit partition reads the sidecar
  // (steps_in_run), which lies outside the fingerprint, so which
  // sidecar-variant record wins an intern race is scheduling-dependent. That
  // only moves events between "enumerated" and "skipped" — their sum per
  // record, and hence visited / transitions / the verdict, is invariant.
  constexpr typesys::Value kInputA = 101;
  constexpr typesys::Value kInputB = 202;
  auto type = typesys::make_type("Sn(4)");
  ASSERT_NE(type, nullptr);
  rc::TeamConsensusSystem built =
      rc::make_team_consensus_system(*type, 4, kInputA, kInputB);
  check::ScenarioSystem system;
  system.memory = std::move(built.memory);
  system.processes = std::move(built.processes);
  system.properties.valid_outputs = {kInputA, kInputB};
  system.symmetry_classes = built.symmetry_classes;
  check::Budget budget;
  budget.crash_budget = 1;

  const check::CheckReport sequential =
      run(system, budget, check::Strategy::kSequentialDFS, 0);
  ASSERT_TRUE(sequential.clean);
  ASSERT_TRUE(sequential.complete);
  EXPECT_EQ(sequential.threads_used, 1);
  // The reduction actually engaged: siblings were skipped, and every skip is
  // still accounted as a transition of the unreduced graph.
  EXPECT_GT(sequential.stats.orbit_skipped, 0u);
  EXPECT_GE(sequential.stats.transitions, sequential.stats.orbit_skipped);

  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const check::CheckReport parallel =
        run(system, budget, check::Strategy::kParallelBFS, threads);
    EXPECT_TRUE(parallel.clean);
    EXPECT_TRUE(parallel.complete);
    EXPECT_EQ(parallel.threads_used, threads);
    EXPECT_EQ(parallel.stats.visited, sequential.stats.visited);
    EXPECT_EQ(parallel.stats.transitions, sequential.stats.transitions);
    EXPECT_EQ(parallel.stats.terminal_states, sequential.stats.terminal_states);
    EXPECT_GT(parallel.stats.orbit_skipped, 0u);
    expect_hot_path_engaged(parallel);
  }
}

TEST(DeterminismStressTest, LegacyRepresentationIsDeterministicToo) {
  // The clone-based path shares the batched frontier and arena links; pin its
  // determinism on the register race (decodable or not, NodeRepr::kLegacy
  // forces it).
  const auto cases = corpus_cases();
  for (const CorpusCase& corpus_case : cases) {
    if (corpus_case.name.find("register") == std::string::npos) continue;
    SCOPED_TRACE(corpus_case.name);
    std::optional<sim::Violation> first;
    for (const int threads : kThreadCounts) {
      check::CheckRequest request;
      request.system = corpus_case.system;
      request.budget = corpus_case.budget;
      request.strategy = check::Strategy::kParallelBFS;
      request.num_threads = threads;
      request.node_repr = sim::NodeRepr::kLegacy;
      const check::CheckReport report = check::check(std::move(request));
      ASSERT_FALSE(report.clean);
      ASSERT_TRUE(report.violation.has_value());
      EXPECT_FALSE(report.stats.compact);
      if (!first.has_value()) {
        first = report.violation;
      } else {
        EXPECT_EQ(report.violation->schedule, first->schedule);
        EXPECT_EQ(report.violation->description, first->description);
      }
    }
  }
}

}  // namespace
}  // namespace rcons::engine
