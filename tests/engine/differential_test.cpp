// Differential test of the node representations: with symmetry reduction
// off, the compact interned-record explorers must traverse the *identical*
// deduplicated graph as the legacy clone-based expansion — same visited /
// transition / decision / terminal counts, same verdict, and (for the
// deterministic reporters) the same violating schedule. With symmetry
// reduction on, the visited set must only shrink (never grow) and the
// verdict must be preserved.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <optional>
#include <string>
#include <vector>

#include "engine/parallel_explorer.hpp"
#include "rc/naive_register.hpp"
#include "rc/team_consensus.hpp"
#include "sim/explorer.hpp"
#include "typesys/zoo.hpp"

namespace rcons::engine {
namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

struct Outcome {
  std::optional<sim::Violation> violation;
  sim::ExplorerStats stats;
};

struct System {
  sim::Memory memory;
  std::vector<sim::Process> processes;
  std::vector<int> symmetry_classes;
};

Outcome run_sequential(const System& system, sim::ExplorerConfig config,
                       sim::NodeRepr repr, bool expect_compact) {
  config.node_repr = repr;
  sim::Explorer explorer(system.memory, system.processes, config);
  EXPECT_EQ(explorer.compact(), expect_compact);
  Outcome outcome;
  outcome.violation = explorer.run();
  outcome.stats = explorer.stats();
  return outcome;
}

Outcome run_parallel(const System& system, const sim::ExplorerConfig& base,
                     sim::NodeRepr repr, bool expect_compact, int threads) {
  ParallelExplorerConfig config;
  static_cast<sim::ExplorerConfig&>(config) = base;
  config.node_repr = repr;
  config.num_threads = threads;
  ParallelExplorer explorer(system.memory, system.processes, config);
  EXPECT_EQ(explorer.compact(), expect_compact);
  Outcome outcome;
  outcome.violation = explorer.run();
  outcome.stats = explorer.stats();
  return outcome;
}

void expect_identical_graph(const Outcome& legacy, const Outcome& compact,
                            const std::string& label) {
  EXPECT_EQ(legacy.violation.has_value(), compact.violation.has_value()) << label;
  EXPECT_EQ(legacy.stats.visited, compact.stats.visited) << label;
  EXPECT_EQ(legacy.stats.transitions, compact.stats.transitions) << label;
  EXPECT_EQ(legacy.stats.decisions, compact.stats.decisions) << label;
  EXPECT_EQ(legacy.stats.terminal_states, compact.stats.terminal_states) << label;
  EXPECT_EQ(legacy.stats.truncated, compact.stats.truncated) << label;
  if (legacy.violation.has_value() && compact.violation.has_value()) {
    EXPECT_EQ(legacy.violation->description, compact.violation->description) << label;
    EXPECT_EQ(legacy.violation->schedule, compact.violation->schedule) << label;
  }
}

System team_consensus_system(const std::string& type_name, int n) {
  auto type = typesys::make_type(type_name);
  EXPECT_NE(type, nullptr) << type_name;
  rc::TeamConsensusSystem built =
      rc::make_team_consensus_system(*type, n, kInputA, kInputB);
  return System{std::move(built.memory), std::move(built.processes),
                std::move(built.symmetry_classes)};
}

struct SeedCase {
  std::string type_name;
  int n;
  int crash_budget;
  sim::CrashModel crash_model;
};

class DifferentialSeedTest : public ::testing::TestWithParam<SeedCase> {};

TEST_P(DifferentialSeedTest, CompactAndLegacyExploreTheIdenticalGraph) {
  const SeedCase& c = GetParam();
  const System system = team_consensus_system(c.type_name, c.n);

  sim::ExplorerConfig config;
  config.crash_model = c.crash_model;
  config.crash_budget = c.crash_budget;
  config.properties.valid_outputs = {kInputA, kInputB};

  const Outcome seq_legacy =
      run_sequential(system, config, sim::NodeRepr::kLegacy, false);
  const Outcome seq_compact =
      run_sequential(system, config, sim::NodeRepr::kCompact, true);
  expect_identical_graph(seq_legacy, seq_compact, "sequential");
  EXPECT_TRUE(seq_compact.stats.compact);
  EXPECT_FALSE(seq_legacy.stats.compact);
  // Interned nodes = visited states + the root; every record costs bytes.
  EXPECT_EQ(seq_compact.stats.store.nodes, seq_compact.stats.visited + 1);
  EXPECT_GT(seq_compact.stats.store.bytes_per_node(), 0.0);
  EXPECT_EQ(seq_compact.stats.store.canonical_hits, 0u);  // symmetry off

  const Outcome par_legacy =
      run_parallel(system, config, sim::NodeRepr::kLegacy, false, 4);
  expect_identical_graph(seq_legacy, par_legacy, "parallel-legacy");
  const Outcome par_compact =
      run_parallel(system, config, sim::NodeRepr::kCompact, true, 4);
  expect_identical_graph(seq_legacy, par_compact, "parallel-compact");
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DifferentialSeedTest,
    ::testing::Values(SeedCase{"Sn(2)", 2, 3, sim::CrashModel::kIndependent},
                      SeedCase{"Sn(3)", 3, 2, sim::CrashModel::kIndependent},
                      SeedCase{"sticky-bit", 3, 2, sim::CrashModel::kSimultaneous},
                      SeedCase{"Tn(4)", 2, 3, sim::CrashModel::kIndependent}),
    [](const ::testing::TestParamInfo<SeedCase>& info) {
      std::string name = info.param.type_name + "_n" + std::to_string(info.param.n) +
                         "_c" + std::to_string(info.param.crash_budget) +
                         (info.param.crash_model == sim::CrashModel::kIndependent
                              ? "_ind"
                              : "_sim");
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(DifferentialTest, ViolatingSystemsReportTheSameLowestViolation) {
  // The naive register race: both explorers must find a violation, and the
  // deterministic reporters (sequential first-DFS violation, parallel
  // lowest-trace violation) must agree between representations.
  rc::NaiveRegisterSystem built = rc::make_naive_register_system(2);
  const System system{std::move(built.memory), std::move(built.processes), {}};

  sim::ExplorerConfig config;
  config.crash_budget = 1;
  config.properties.valid_outputs = built.inputs;

  const Outcome seq_legacy =
      run_sequential(system, config, sim::NodeRepr::kLegacy, false);
  const Outcome seq_compact =
      run_sequential(system, config, sim::NodeRepr::kCompact, true);
  ASSERT_TRUE(seq_legacy.violation.has_value());
  expect_identical_graph(seq_legacy, seq_compact, "sequential");

  const Outcome par_legacy =
      run_parallel(system, config, sim::NodeRepr::kLegacy, false, 4);
  const Outcome par_compact =
      run_parallel(system, config, sim::NodeRepr::kCompact, true, 4);
  ASSERT_TRUE(par_legacy.violation.has_value());
  ASSERT_TRUE(par_compact.violation.has_value());
  expect_identical_graph(par_legacy, par_compact, "parallel");
}

TEST(DifferentialTest, CanonicalizationOnlyShrinksTheVisitedSet) {
  for (const char* type_name : {"Sn(3)", "Sn(4)"}) {
    const int n = type_name == std::string("Sn(3)") ? 3 : 4;
    const System system = team_consensus_system(type_name, n);
    ASSERT_FALSE(system.symmetry_classes.empty());

    sim::ExplorerConfig config;
    config.crash_budget = 1;
    config.properties.valid_outputs = {kInputA, kInputB};

    const Outcome off = run_sequential(system, config, sim::NodeRepr::kCompact, true);

    sim::ExplorerConfig with_symmetry = config;
    with_symmetry.symmetry_classes = system.symmetry_classes;
    const Outcome on =
        run_sequential(system, with_symmetry, sim::NodeRepr::kCompact, true);

    EXPECT_EQ(off.violation.has_value(), on.violation.has_value()) << type_name;
    EXPECT_LE(on.stats.visited, off.stats.visited) << type_name;

    // The declaration only helps when some class has >= 2 members; when it
    // does, team consensus has genuinely symmetric reachable states.
    std::vector<int> counts(system.symmetry_classes.size(), 0);
    int largest = 0;
    for (const int cls : system.symmetry_classes) {
      largest = std::max(largest, ++counts[static_cast<std::size_t>(cls)]);
    }
    if (largest >= 2) {
      EXPECT_LT(on.stats.visited, off.stats.visited) << type_name;
      EXPECT_GT(on.stats.store.canonical_hits, 0u) << type_name;
    }

    // The parallel engine agrees with the sequential explorer under
    // canonicalization too.
    ParallelExplorerConfig par_config;
    static_cast<sim::ExplorerConfig&>(par_config) = with_symmetry;
    par_config.num_threads = 4;
    ParallelExplorer parallel(system.memory, system.processes, par_config);
    const auto par_violation = parallel.run();
    EXPECT_EQ(par_violation.has_value(), on.violation.has_value()) << type_name;
    EXPECT_EQ(parallel.stats().visited, on.stats.visited) << type_name;
  }
}

}  // namespace
}  // namespace rcons::engine
