// The deterministic fault harness: grammar, hit-count semantics, stall
// release, and the matrix contract — every injected failure mode ends in a
// clean typed verdict (never a hang, never an abort) across thread counts.
#include "engine/fault_inject.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"
#include "check/spec_system.hpp"

namespace rcons::engine {
namespace {

TEST(FaultPlanGrammarTest, ParsesActionSiteAndHit) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("die@batch=50", plan, error)) << error;
  EXPECT_EQ(plan.site(), FaultPlan::Site::kBatch);
  EXPECT_EQ(plan.action(), FaultPlan::Action::kDie);
  EXPECT_EQ(plan.at_hit(), 50u);

  ASSERT_TRUE(parse_fault_plan("alloc@intern=5000", plan, error)) << error;
  EXPECT_EQ(plan.site(), FaultPlan::Site::kIntern);
  EXPECT_EQ(plan.action(), FaultPlan::Action::kAllocFail);

  ASSERT_TRUE(parse_fault_plan("trunc@ckpt-write=1", plan, error)) << error;
  EXPECT_EQ(plan.site(), FaultPlan::Site::kCkptWrite);
  EXPECT_EQ(plan.action(), FaultPlan::Action::kTruncateWrite);
}

TEST(FaultPlanGrammarTest, StallOptionOverridesDefaultTimeout) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("stall@batch=100:ms=60000", plan, error)) << error;
  EXPECT_EQ(plan.action(), FaultPlan::Action::kStall);
  EXPECT_EQ(plan.stall_ms(), 60000);
  // Re-arming through the parser resets the timeout to the default.
  ASSERT_TRUE(parse_fault_plan("stall@batch=100", plan, error)) << error;
  EXPECT_EQ(plan.stall_ms(), 30000);
}

TEST(FaultPlanGrammarTest, RandomPlacementIsSeededAndInRange) {
  FaultPlan a, b, c;
  std::string error;
  ASSERT_TRUE(parse_fault_plan("stop@batch=~200:seed=7", a, error)) << error;
  ASSERT_TRUE(parse_fault_plan("stop@batch=~200:seed=7", b, error)) << error;
  ASSERT_TRUE(parse_fault_plan("stop@batch=~200:seed=8", c, error)) << error;
  EXPECT_EQ(a.at_hit(), b.at_hit());  // same seed, same placement
  EXPECT_GE(a.at_hit(), 1u);
  EXPECT_LE(a.at_hit(), 200u);
  EXPECT_GE(c.at_hit(), 1u);
  EXPECT_LE(c.at_hit(), 200u);
}

TEST(FaultPlanGrammarTest, RejectsMalformedPlans) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(parse_fault_plan("explode@batch=1", plan, error));
  EXPECT_NE(error.find("unknown action"), std::string::npos);
  EXPECT_FALSE(parse_fault_plan("die@nowhere=1", plan, error));
  EXPECT_NE(error.find("unknown site"), std::string::npos);
  EXPECT_FALSE(parse_fault_plan("trunc@batch=1", plan, error));
  EXPECT_NE(error.find("ckpt-write"), std::string::npos);
  EXPECT_FALSE(parse_fault_plan("die@batch=", plan, error));
  EXPECT_FALSE(parse_fault_plan("die@batch=0", plan, error));
  EXPECT_FALSE(parse_fault_plan("die@batch=x", plan, error));
  EXPECT_FALSE(parse_fault_plan("die@batch=5:bogus=1", plan, error));
  EXPECT_FALSE(parse_fault_plan("diebatch=5", plan, error));
}

TEST(FaultPlanTest, FiresExactlyOnTheArmedHitOfTheArmedSite) {
  FaultPlan plan(FaultPlan::Site::kBatch, FaultPlan::Action::kStop, 3);
  // Wrong site never counts.
  EXPECT_EQ(plan.hit(FaultPlan::Site::kIntern), FaultPlan::Action::kNone);
  EXPECT_EQ(plan.hit(FaultPlan::Site::kBatch), FaultPlan::Action::kNone);
  EXPECT_EQ(plan.hit(FaultPlan::Site::kBatch), FaultPlan::Action::kNone);
  EXPECT_FALSE(plan.fired());
  EXPECT_EQ(plan.hit(FaultPlan::Site::kBatch), FaultPlan::Action::kStop);
  EXPECT_TRUE(plan.fired());
  // Only the Nth hit fires; later hits are silent.
  EXPECT_EQ(plan.hit(FaultPlan::Site::kBatch), FaultPlan::Action::kNone);
}

TEST(FaultPlanTest, AllocFailThrowsBadAlloc) {
  FaultPlan plan(FaultPlan::Site::kIntern, FaultPlan::Action::kAllocFail, 1);
  EXPECT_THROW(plan.hit(FaultPlan::Site::kIntern), std::bad_alloc);
}

TEST(FaultPlanTest, ReleaseStallsUnblocksAStalledThread) {
  FaultPlan plan(FaultPlan::Site::kBatch, FaultPlan::Action::kStall, 1);
  plan.set_stall_ms(60'000);  // far beyond the test's patience: release must work
  std::atomic<bool> returned{false};
  std::thread stalled([&] {
    plan.hit(FaultPlan::Site::kBatch);
    returned.store(true, std::memory_order_seq_cst);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load(std::memory_order_seq_cst));
  plan.release_stalls();
  stalled.join();
  EXPECT_TRUE(returned.load(std::memory_order_seq_cst));
}

// --- the matrix: injected failures end in typed verdicts, at every scale ---

check::CheckRequest matrix_request(int threads) {
  check::ScenarioSpec spec;
  std::vector<std::string> errors;
  check::parse_scenario_line("type=Sn(3) n=3 model=independent budget=2", spec,
                             errors);
  EXPECT_TRUE(errors.empty());
  check::CheckRequest request;
  request.system = check::build_spec_system(spec);
  request.budget.crash_model = spec.crash_model;
  request.budget.crash_budget = spec.crash_budget;
  request.strategy = check::Strategy::kParallelBFS;
  request.num_threads = threads;
  request.sentinel_interval_ms = 5;
  return request;
}

struct MatrixCase {
  const char* plan;
  sim::StopReason reason;
  const char* description_marker;  // must appear in the truncation verdict
  int watchdog = 0;
};

TEST(FaultMatrixTest, EveryInjectionEndsInATypedVerdictAcrossThreadCounts) {
  const MatrixCase cases[] = {
      {"alloc@batch=10", sim::StopReason::kMemory, "allocation failed"},
      {"alloc@intern=50", sim::StopReason::kMemory, "allocation failed"},
      {"stop@batch=10", sim::StopReason::kForcedStop, "external request"},
      {"stall@batch=10:ms=30000", sim::StopReason::kWatchdog, "no progress",
       /*watchdog=*/3},
  };
  for (const MatrixCase& test : cases) {
    for (const int threads : {1, 4, 8}) {
      FaultPlan plan;
      std::string error;
      ASSERT_TRUE(parse_fault_plan(test.plan, plan, error)) << error;
      check::CheckRequest request = matrix_request(threads);
      request.fault = &plan;
      request.watchdog_stall_intervals = test.watchdog;
      const check::CheckReport report = check::check(std::move(request));
      SCOPED_TRACE(std::string(test.plan) + " threads=" + std::to_string(threads));
      EXPECT_TRUE(report.stats.truncated);
      EXPECT_EQ(report.stats.stop_reason, test.reason);
      EXPECT_FALSE(report.complete);
      ASSERT_TRUE(report.violation.has_value());  // the truncation marker
      EXPECT_EQ(report.violation->property, sim::PropertyKind::kNone);
      EXPECT_NE(report.violation->description.find(test.description_marker),
                std::string::npos)
          << report.violation->description;
    }
  }
}

TEST(FaultMatrixTest, UnfiredPlanLeavesTheRunUntouched) {
  // A plan armed at a hit count the run never reaches: same verdict and the
  // same visited count as a run with no plan at all (zero-cost when unset).
  const check::CheckReport bare = check::check(matrix_request(4));
  FaultPlan plan(FaultPlan::Site::kBatch, FaultPlan::Action::kDie,
                 std::uint64_t{1} << 40);
  check::CheckRequest request = matrix_request(4);
  request.fault = &plan;
  const check::CheckReport faulted = check::check(std::move(request));
  EXPECT_FALSE(plan.fired());
  EXPECT_EQ(bare.clean, faulted.clean);
  EXPECT_EQ(bare.stats.visited, faulted.stats.visited);
}

}  // namespace
}  // namespace rcons::engine
