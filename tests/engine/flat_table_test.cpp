// Unit coverage of the flat open-addressing fingerprint table behind the
// sharded visited set and the NodeStore index: insert/contains semantics,
// growth across incremental rehashes, probing under clustered keys, and full
// 128-bit key comparison (same-bucket and same-half "collisions" must not
// alias).
#include "engine/flat_table.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/hash.hpp"

namespace rcons::engine {
namespace {

util::U128 key(std::uint64_t i) {
  return util::U128{util::mix64(i), util::mix64(i + 0xabcdefULL)};
}

TEST(FlatTableTest, InsertAndContains) {
  FlatTable table;
  EXPECT_FALSE(table.contains(key(1)));
  EXPECT_TRUE(table.insert(key(1), 10).inserted);
  EXPECT_TRUE(table.contains(key(1)));
  EXPECT_FALSE(table.contains(key(2)));
  EXPECT_EQ(table.size(), 1u);

  // A duplicate insert reports the resident payload, not the offered one.
  const FlatTable::Found dup = table.insert(key(1), 99);
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.value, 10u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatTableTest, FindReturnsPayloads) {
  FlatTable table;
  for (std::uint64_t i = 0; i < 100; ++i) table.insert(key(i), i * 3);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const std::uint64_t* value = table.find(key(i));
    ASSERT_NE(value, nullptr) << i;
    EXPECT_EQ(*value, i * 3);
  }
  EXPECT_EQ(table.find(key(1'000)), nullptr);
}

TEST(FlatTableTest, GrowthAcrossIncrementalRehashKeepsEveryKey) {
  // Start minimal and push through several doublings; every key must stay
  // findable at every point, including while a migration sweep is in flight.
  FlatTable table;
  constexpr std::uint64_t kKeys = 50'000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(table.insert(key(i), i).inserted);
    // Spot-check an old key mid-growth so in-flight migrations are observed.
    if (i % 977 == 0 && i > 0) {
      const std::uint64_t probe = i / 2;
      const std::uint64_t* value = table.find(key(probe));
      ASSERT_NE(value, nullptr) << probe;
      EXPECT_EQ(*value, probe);
    }
  }
  EXPECT_EQ(table.size(), kKeys);
  EXPECT_GT(table.stats().rehashes, 5u);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(table.contains(key(i))) << i;
    EXPECT_FALSE(table.insert(key(i), 0).inserted) << i;
  }
  EXPECT_EQ(table.size(), kKeys);
  // Steady state again: the final sweep completes within a bounded number of
  // operations, so a table this far past its growths is not mid-migration.
  EXPECT_FALSE(table.migrating());
}

TEST(FlatTableTest, PresizedTableNeverRehashes) {
  FlatTable table(/*expected=*/10'000);
  const std::size_t initial_capacity = table.capacity();
  for (std::uint64_t i = 0; i < 10'000; ++i) table.insert(key(i), i);
  EXPECT_EQ(table.size(), 10'000u);
  EXPECT_EQ(table.stats().rehashes, 0u);
  EXPECT_EQ(table.capacity(), initial_capacity);
}

TEST(FlatTableTest, FullWidthKeysDistinguishSameBucketCollisions) {
  // Keys that agree on one 64-bit half (or hash to nearby buckets) must stay
  // distinct entries: equality is on all 128 bits.
  FlatTable table;
  const util::U128 base{0x1234'5678'9abc'def0ULL, 0x0f0f'0f0f'0f0f'0f0fULL};
  const util::U128 same_lo{base.lo, base.hi + 1};
  const util::U128 same_hi{base.lo + 1, base.hi};
  const util::U128 swapped{base.hi, base.lo};
  EXPECT_TRUE(table.insert(base, 1).inserted);
  EXPECT_TRUE(table.insert(same_lo, 2).inserted);
  EXPECT_TRUE(table.insert(same_hi, 3).inserted);
  EXPECT_TRUE(table.insert(swapped, 4).inserted);
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(*table.find(base), 1u);
  EXPECT_EQ(*table.find(same_lo), 2u);
  EXPECT_EQ(*table.find(same_hi), 3u);
  EXPECT_EQ(*table.find(swapped), 4u);
}

TEST(FlatTableTest, AllZeroKeyIsALegalFingerprint) {
  // The empty-slot marker must not swallow the all-zero key.
  FlatTable table;
  const util::U128 zero{0, 0};
  EXPECT_FALSE(table.contains(zero));
  EXPECT_TRUE(table.insert(zero, 42).inserted);
  EXPECT_TRUE(table.contains(zero));
  EXPECT_EQ(*table.find(zero), 42u);
  const FlatTable::Found dup = table.insert(zero, 7);
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.value, 42u);
  EXPECT_EQ(table.size(), 1u);

  // And it survives growth like any other key.
  for (std::uint64_t i = 1; i <= 5'000; ++i) table.insert(key(i), i);
  EXPECT_GT(table.stats().rehashes, 0u);
  EXPECT_EQ(*table.find(zero), 42u);
}

TEST(FlatTableTest, ProbeStatsTrackWork) {
  FlatTable table;
  for (std::uint64_t i = 0; i < 1'000; ++i) table.insert(key(i), i);
  const FlatTable::Stats& stats = table.stats();
  EXPECT_GE(stats.probe_ops, 1'000u);
  EXPECT_GE(stats.probe_total, stats.probe_ops);
  EXPECT_GE(stats.max_probe, 1u);
}

}  // namespace
}  // namespace rcons::engine
