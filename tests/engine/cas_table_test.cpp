#include "engine/cas_table.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/hash.hpp"

namespace rcons::engine {
namespace {

util::U128 key(std::uint64_t i) {
  return util::U128{util::mix64(i), util::mix64(i + 0xabcd'1234ULL)};
}

TEST(CasTableTest, InsertFindAndDuplicates) {
  CasTable table;
  EXPECT_TRUE(table.insert(key(1), 11).inserted);
  EXPECT_TRUE(table.insert(key(2), 22).inserted);

  // A duplicate loses and reports the resident value, not its own.
  const CasTable::Found dup = table.insert(key(1), 99);
  EXPECT_FALSE(dup.inserted);
  EXPECT_EQ(dup.value, 11u);

  std::uint64_t value = 0;
  EXPECT_TRUE(table.find(key(2), value));
  EXPECT_EQ(value, 22u);
  EXPECT_TRUE(table.contains(key(1)));
  EXPECT_FALSE(table.contains(key(3)));
  EXPECT_EQ(table.size(), 2u);
}

TEST(CasTableTest, AllZeroKeyIsAnOrdinaryKey) {
  // The slot encoding must not confuse U128{0,0} with an EMPTY slot: presence
  // is carried by the tag, never by the key bytes.
  CasTable table;
  EXPECT_TRUE(table.insert(util::U128{0, 0}, 7).inserted);
  std::uint64_t value = 0;
  EXPECT_TRUE(table.find(util::U128{0, 0}, value));
  EXPECT_EQ(value, 7u);
  EXPECT_FALSE(table.insert(util::U128{0, 0}, 8).inserted);
  EXPECT_EQ(table.size(), 1u);
}

TEST(CasTableTest, GrowthKeepsEveryKeyAndValue) {
  CasTable table;  // minimal capacity: forces several growth epochs
  constexpr std::uint64_t kKeys = 20'000;
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(table.insert(key(i), i).inserted) << i;
  }
  EXPECT_GT(table.rehashes(), 0u);
  EXPECT_EQ(table.size(), kKeys);
  // Every key survived every migration with its original payload.
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    std::uint64_t value = ~std::uint64_t{0};
    ASSERT_TRUE(table.find(key(i), value)) << i;
    ASSERT_EQ(value, i) << i;
  }
  // And duplicates still lose against the migrated originals.
  for (std::uint64_t i = 0; i < kKeys; i += 97) {
    const CasTable::Found dup = table.insert(key(i), ~i);
    EXPECT_FALSE(dup.inserted);
    EXPECT_EQ(dup.value, i);
  }
}

TEST(CasTableTest, PresizedTableNeverGrows) {
  CasTable table(/*expected=*/10'000);
  for (std::uint64_t i = 0; i < 10'000; ++i) table.insert(key(i), i);
  EXPECT_EQ(table.size(), 10'000u);
  EXPECT_EQ(table.rehashes(), 0u);
  EXPECT_FALSE(table.migrating());
}

TEST(CasTableTest, CooperativeSweepFinishesUnderDuplicateTraffic) {
  // Helping is driven by the insert path itself — even duplicate inserts
  // migrate a stripe while a sweep is pending, so bounded traffic after a
  // growth must finish the sweep without any dedicated migrator thread.
  CasTable table;
  std::uint64_t i = 0;
  while (table.rehashes() == 0) {
    table.insert(key(i), i);
    i += 1;
  }
  for (std::size_t spins = 0; table.migrating() && spins < table.capacity();
       ++spins) {
    table.insert(key(0), 0);  // duplicate: no size change, still helps
  }
  EXPECT_FALSE(table.migrating());
  EXPECT_EQ(table.size(), i);
}

TEST(CasTableTest, InsertWithMaterializesThePayloadExactlyOnce) {
  CasTable table;
  int calls = 0;
  const auto make = [&calls] {
    calls += 1;
    return std::uint64_t{42};
  };
  EXPECT_TRUE(table.insert_with(key(5), make).inserted);
  EXPECT_EQ(calls, 1);
  // The duplicate path never materializes a payload.
  EXPECT_FALSE(table.insert_with(key(5), make).inserted);
  EXPECT_EQ(calls, 1);
}

TEST(CasTableTest, OpStatsAccumulateCallerSide) {
  CasTable table;
  CasTable::OpStats ops;
  for (std::uint64_t i = 0; i < 2'000; ++i) table.insert(key(i), i, &ops);
  EXPECT_GE(ops.probe_ops, 2'000u);  // growth helpers probe too
  EXPECT_GE(ops.probe_total, ops.probe_ops);
  EXPECT_GE(ops.max_probe, 1u);
  // A minimal table growing to 2000 keys swept stripes via this caller.
  EXPECT_GT(ops.migration_stripes, 0u);
}

TEST(CasTableTest, ConcurrentInsertersAgreeOnWinners) {
  // T threads race the same key range with thread-distinct payloads: exactly
  // one insert per key may win, and every loser must observe the winner's
  // payload — the published-slot acquire contract.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 10'000;
  CasTable table;
  std::vector<std::uint64_t> wins(kThreads, 0);
  std::vector<CasTable::OpStats> ops(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &table, &wins, &ops] {
      const auto tag = static_cast<std::uint64_t>(t + 1) << 32;
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const CasTable::Found found =
            table.insert(key(i), tag | i, &ops[static_cast<std::size_t>(t)]);
        if (found.inserted) {
          wins[static_cast<std::size_t>(t)] += 1;
        } else {
          // The resident value must be a complete (tag | i) write by SOME
          // thread for THIS key — a torn or missing payload fails here.
          ASSERT_EQ(found.value & 0xffff'ffffULL, i);
          ASSERT_NE(found.value >> 32, 0u);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::uint64_t total_wins = 0;
  std::uint64_t total_probe_ops = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_wins += wins[static_cast<std::size_t>(t)];
    total_probe_ops += ops[static_cast<std::size_t>(t)].probe_ops;
  }
  EXPECT_EQ(total_wins, kKeys);
  EXPECT_EQ(table.size(), kKeys);
  EXPECT_GE(total_probe_ops, kKeys * kThreads);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    std::uint64_t value = 0;
    ASSERT_TRUE(table.find(key(i), value)) << i;
    ASSERT_EQ(value & 0xffff'ffffULL, i);
  }
}

TEST(CasTableTest, ConcurrentGrowthMigrationStress) {
  // Start minimal so the table must grow many times while all threads are
  // mid-insert: every epoch's seal/tombstone/retry handshake and the shared
  // stripe sweep run under real contention. Disjoint per-thread key ranges
  // make the final size exact.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeysPerThread = 8'000;
  CasTable table;
  std::vector<CasTable::OpStats> ops(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &table, &ops] {
      const std::uint64_t base = static_cast<std::uint64_t>(t) * kKeysPerThread;
      for (std::uint64_t i = 0; i < kKeysPerThread; ++i) {
        ASSERT_TRUE(
            table.insert(key(base + i), base + i, &ops[static_cast<std::size_t>(t)])
                .inserted);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(table.size(), kThreads * kKeysPerThread);
  EXPECT_GT(table.rehashes(), 0u);
  std::uint64_t total_stripes = 0;
  for (int t = 0; t < kThreads; ++t) {
    total_stripes += ops[static_cast<std::size_t>(t)].migration_stripes;
  }
  EXPECT_GT(total_stripes, 0u);
  for (std::uint64_t i = 0; i < kThreads * kKeysPerThread; ++i) {
    std::uint64_t value = 0;
    ASSERT_TRUE(table.find(key(i), value)) << i;
    ASSERT_EQ(value, i) << i;
  }
}

}  // namespace
}  // namespace rcons::engine
