// Unit tests of the compact interned node representation: NodeStore
// intern/fetch round trips, NodeCodec encode/decode inversion (including
// fingerprint parity with the legacy clone-based encoding), and the
// Canonicalizer's symmetry reduction.
#include "engine/node_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "engine/expand.hpp"
#include "rc/naive_register.hpp"
#include "rc/team_consensus.hpp"
#include "typesys/zoo.hpp"

namespace rcons::engine {
namespace {

util::U128 key(std::uint64_t i) {
  return util::U128{util::mix64(i), util::mix64(i + 0x9876ULL)};
}

std::vector<typesys::Value> record_of(std::uint64_t i, std::size_t length) {
  std::vector<typesys::Value> record;
  for (std::size_t k = 0; k < length; ++k) {
    record.push_back(static_cast<typesys::Value>(i * 100 + k));
  }
  return record;
}

TEST(NodeStoreTest, InternRoundTripsRecords) {
  NodeStore store(2);
  std::vector<NodeStore::NodeId> ids;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto interned = store.intern(key(i), record_of(i, 5 + i % 7));
    EXPECT_TRUE(interned.inserted);
    ids.push_back(interned.id);
  }
  EXPECT_EQ(store.size(), 50u);

  std::vector<typesys::Value> fetched;
  for (std::uint64_t i = 0; i < 50; ++i) {
    store.fetch(ids[i], fetched);
    EXPECT_EQ(fetched, record_of(i, 5 + i % 7)) << "record " << i;
  }
}

TEST(NodeStoreTest, DuplicateInternReturnsExistingId) {
  NodeStore store(0);
  const auto first = store.intern(key(7), record_of(7, 4));
  const auto second = store.intern(key(7), record_of(7, 4));
  EXPECT_TRUE(first.inserted);
  EXPECT_FALSE(second.inserted);
  EXPECT_EQ(first.id, second.id);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().duplicate_hits, 1u);
}

TEST(NodeStoreTest, StatsCountNodesAndBytes) {
  NodeStore store(1);
  store.intern(key(1), record_of(1, 10));
  store.intern(key(2), record_of(2, 6));
  const NodeStore::Stats stats = store.stats();
  EXPECT_EQ(stats.nodes, 2u);
  EXPECT_EQ(stats.value_bytes, 16u * sizeof(typesys::Value));
  const auto load = store.load_stats();
  EXPECT_EQ(load.total, 2u);
}

TEST(NodeStoreTest, ConcurrentInternsAgreeOnWinners) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kKeys = 2000;
  // One bump arena per thread: arenas are single-owner by contract (the
  // explorers hand each worker its own index), so racing threads must not
  // share arena 0.
  NodeStore store(4, /*expected_states=*/0, /*num_arenas=*/kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        store.intern(key(i), record_of(i, 3), t);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(store.size(), kKeys);
  EXPECT_EQ(store.stats().duplicate_hits, (kThreads - 1) * kKeys);

  std::vector<typesys::Value> fetched;
  const auto again = store.intern(key(123), record_of(123, 3));
  EXPECT_FALSE(again.inserted);
  store.fetch(again.id, fetched);
  EXPECT_EQ(fetched, record_of(123, 3));
}

// Encode/decode must be mutually inverse, and the fingerprint must equal the
// legacy clone-based fingerprint of the same node (that is what lets compact
// and legacy runs explore the identical deduplicated graph).
TEST(NodeCodecTest, EncodeDecodeRoundTripsAndMatchesLegacyFingerprint) {
  rc::NaiveRegisterSystem system = rc::make_naive_register_system(2);
  Node root = make_root(system.memory, system.processes);
  ASSERT_TRUE(NodeCodec::decodable(root));

  sim::ExplorerConfig config;
  config.crash_budget = 1;

  // Drive the root into a nontrivial state: p0 steps, p1 steps, p0 crashes.
  Node state = root;
  EXPECT_FALSE(apply_event(state, Event{Event::Kind::kStep, 0}, config));
  EXPECT_FALSE(apply_event(state, Event{Event::Kind::kStep, 1}, config));
  EXPECT_FALSE(apply_event(state, Event{Event::Kind::kCrash, 0}, config));

  NodeCodec codec;
  std::vector<typesys::Value> record;
  const NodeCodec::Encoded encoded = codec.encode(state, record);
  EXPECT_FALSE(encoded.permuted);

  std::vector<typesys::Value> legacy;
  EXPECT_EQ(encoded.fingerprint, fingerprint(state, legacy));

  // Decode into a scratch node that currently holds a different state.
  Node scratch = root;
  codec.decode(record.data(), record.size(), scratch);
  EXPECT_EQ(scratch.crashes_used, state.crashes_used);
  EXPECT_EQ(scratch.done, state.done);
  EXPECT_EQ(scratch.steps_in_run, state.steps_in_run);
  EXPECT_EQ(scratch.decisions, state.decisions);

  // Re-encoding the decoded node reproduces the identical record.
  std::vector<typesys::Value> record_again;
  const NodeCodec::Encoded encoded_again = codec.encode(scratch, record_again);
  EXPECT_EQ(record_again, record);
  EXPECT_EQ(encoded_again.fingerprint, encoded.fingerprint);
}

// Two processes with the same program and input are interchangeable: states
// that differ only by swapping them must canonicalize to one fingerprint.
TEST(CanonicalizerTest, SymmetricStatesFingerprintIdentically) {
  // Both processes propose the same value — identical programs.
  sim::Memory memory;
  const sim::RegId reg = memory.add_register();
  std::vector<sim::Process> processes;
  processes.emplace_back(rc::NaiveRegisterProgram(reg, 1));
  processes.emplace_back(rc::NaiveRegisterProgram(reg, 1));
  Node root = make_root(memory, processes);

  sim::ExplorerConfig config;
  config.crash_budget = 0;

  Node stepped_p0 = root;
  EXPECT_FALSE(apply_event(stepped_p0, Event{Event::Kind::kStep, 0}, config));
  Node stepped_p1 = root;
  EXPECT_FALSE(apply_event(stepped_p1, Event{Event::Kind::kStep, 1}, config));

  const std::vector<int> classes = {0, 0};
  NodeCodec codec(classes);
  std::vector<typesys::Value> record_p0;
  std::vector<typesys::Value> record_p1;
  const NodeCodec::Encoded a = codec.encode(stepped_p0, record_p0);
  const NodeCodec::Encoded b = codec.encode(stepped_p1, record_p1);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(record_p0, record_p1);
  // Exactly one of the two orientations needed a permutation.
  EXPECT_NE(a.permuted, b.permuted);

  // Without the declaration the two states stay distinct.
  NodeCodec identity;
  std::vector<typesys::Value> raw_p0;
  std::vector<typesys::Value> raw_p1;
  EXPECT_NE(identity.encode(stepped_p0, raw_p0).fingerprint,
            identity.encode(stepped_p1, raw_p1).fingerprint);

  // The root is symmetric already: no permutation, no "hit".
  std::vector<typesys::Value> root_record;
  EXPECT_FALSE(codec.encode(root, root_record).permuted);
}

// Processes in different classes must never be permuted, even if their
// blocks would sort differently.
TEST(CanonicalizerTest, DifferentClassesAreNeverMixed) {
  sim::Memory memory;
  const sim::RegId reg = memory.add_register();
  std::vector<sim::Process> processes;
  processes.emplace_back(rc::NaiveRegisterProgram(reg, 1));
  processes.emplace_back(rc::NaiveRegisterProgram(reg, 2));
  Node root = make_root(memory, processes);

  sim::ExplorerConfig config;
  config.crash_budget = 0;

  Node stepped_p0 = root;
  EXPECT_FALSE(apply_event(stepped_p0, Event{Event::Kind::kStep, 0}, config));
  Node stepped_p1 = root;
  EXPECT_FALSE(apply_event(stepped_p1, Event{Event::Kind::kStep, 1}, config));

  const std::vector<int> classes = {0, 1};  // distinct inputs → distinct classes
  NodeCodec codec(classes);
  std::vector<typesys::Value> record_p0;
  std::vector<typesys::Value> record_p1;
  const NodeCodec::Encoded a = codec.encode(stepped_p0, record_p0);
  const NodeCodec::Encoded b = codec.encode(stepped_p1, record_p1);
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_FALSE(a.permuted);
  EXPECT_FALSE(b.permuted);
}

TEST(NodeCodecTest, TeamConsensusSystemsDeclareUsableSymmetry) {
  // Sn(4) with 4 roles: same-team roles share the witness op for S_n (only
  // opA/opB exist), so at least one class has two members and the explorers
  // can canonicalize. This is the bench's acceptance scenario.
  auto type = typesys::make_type("Sn(4)");
  ASSERT_NE(type, nullptr);
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 4, 101, 202);
  ASSERT_EQ(system.symmetry_classes.size(), 4u);

  std::vector<int> class_sizes(system.symmetry_classes.size(), 0);
  for (const int cls : system.symmetry_classes) {
    ASSERT_GE(cls, 0);
    ASSERT_LT(cls, static_cast<int>(class_sizes.size()));
    class_sizes[static_cast<std::size_t>(cls)] += 1;
  }
  int largest = 0;
  for (const int size : class_sizes) largest = std::max(largest, size);
  EXPECT_GE(largest, 2) << "no interchangeable roles — canonicalization inert";
}

}  // namespace
}  // namespace rcons::engine
