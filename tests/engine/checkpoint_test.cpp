// Durable checkpoints: byte-exact round-trips, a loader that rejects every
// corruption we can synthesize, torn-write atomicity under fault injection,
// and the headline contract — a resumed run finishes with the same visited
// count and verdict as an uninterrupted one.
#include "engine/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"
#include "check/spec_system.hpp"
#include "engine/fault_inject.hpp"

namespace rcons::engine {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "rcons_ckpt_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

CheckpointData sample_data() {
  CheckpointData data;
  data.config_hash = 0x1234'5678'9abc'def0ULL;
  data.label = "type=Sn(3) n=3 model=independent budget=2 algo=team";
  data.root_fp = {0xdeadbeefULL, 0xfeedfaceULL};
  data.visited = 6081;
  data.transitions = 40000;
  data.decisions = 123;
  data.terminal_states = 456;
  data.orbit_skipped = 7;
  data.encodes = 6100;
  data.canonical_hits = 19;
  data.checkpoints_written = 3;
  data.has_violation = true;
  data.violation_description = "agreement violated: outputs {1, 2}";
  data.violation_property = sim::PropertyKind::kAgreement;
  data.violation_param = 0;
  data.violation_schedule = {sim::ScheduleEvent{sim::ScheduleEvent::Kind::kStep, 1},
                             sim::ScheduleEvent{sim::ScheduleEvent::Kind::kCrash, 0}};
  data.nodes.push_back({{1, 2}, {10, 20, 30}});
  data.nodes.push_back({{3, 4}, {}});
  data.nodes.push_back({{5, 6}, {-1, 0x7fffffffffffffffLL}});
  data.frontier = {2, 0};
  return data;
}

void expect_equal(const CheckpointData& a, const CheckpointData& b) {
  EXPECT_EQ(a.config_hash, b.config_hash);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.root_fp.lo, b.root_fp.lo);
  EXPECT_EQ(a.root_fp.hi, b.root_fp.hi);
  EXPECT_EQ(a.visited, b.visited);
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.terminal_states, b.terminal_states);
  EXPECT_EQ(a.orbit_skipped, b.orbit_skipped);
  EXPECT_EQ(a.encodes, b.encodes);
  EXPECT_EQ(a.canonical_hits, b.canonical_hits);
  EXPECT_EQ(a.checkpoints_written, b.checkpoints_written);
  EXPECT_EQ(a.has_violation, b.has_violation);
  EXPECT_EQ(a.violation_description, b.violation_description);
  EXPECT_EQ(a.violation_property, b.violation_property);
  EXPECT_EQ(a.violation_param, b.violation_param);
  ASSERT_EQ(a.violation_schedule.size(), b.violation_schedule.size());
  for (std::size_t i = 0; i < a.violation_schedule.size(); ++i) {
    EXPECT_EQ(a.violation_schedule[i].kind, b.violation_schedule[i].kind);
    EXPECT_EQ(a.violation_schedule[i].process, b.violation_schedule[i].process);
  }
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].fp.lo, b.nodes[i].fp.lo);
    EXPECT_EQ(a.nodes[i].fp.hi, b.nodes[i].fp.hi);
    EXPECT_EQ(a.nodes[i].values, b.nodes[i].values);
  }
  EXPECT_EQ(a.frontier, b.frontier);
}

TEST(CheckpointTest, SerializeLoadRoundTrip) {
  const CheckpointData data = sample_data();
  const std::string path = temp_path("roundtrip.ckpt");
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, data, nullptr, error)) << error;

  CheckpointData loaded;
  ASSERT_EQ(load_checkpoint(path, loaded, error), CheckpointLoad::kOk) << error;
  expect_equal(data, loaded);
  std::remove(path.c_str());
}

TEST(CheckpointTest, MissingFileReportsMissingNotCorrupt) {
  CheckpointData loaded;
  std::string error;
  EXPECT_EQ(load_checkpoint(temp_path("nope.ckpt"), loaded, error),
            CheckpointLoad::kMissing);
}

TEST(CheckpointTest, LoaderRejectsEveryFlippedByte) {
  const std::string bytes = serialize_checkpoint(sample_data());
  const std::string path = temp_path("flip.ckpt");
  // Every byte participates in either the frame or the CRC: flipping any one
  // must fail the load. Stride keeps the test fast; offset 0 (magic) and the
  // last byte (CRC) are always covered.
  for (std::size_t i = 0; i < bytes.size(); i += i < 64 ? 1 : 13) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x40);
    write_file(path, mutated);
    CheckpointData loaded;
    std::string error;
    EXPECT_EQ(load_checkpoint(path, loaded, error), CheckpointLoad::kCorrupt)
        << "flipped byte " << i << " was accepted";
  }
  std::string last = bytes;
  last.back() = static_cast<char>(last.back() ^ 0x01);
  write_file(path, last);
  CheckpointData loaded;
  std::string error;
  EXPECT_EQ(load_checkpoint(path, loaded, error), CheckpointLoad::kCorrupt);
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoaderRejectsEveryTruncation) {
  const std::string bytes = serialize_checkpoint(sample_data());
  const std::string path = temp_path("trunc.ckpt");
  for (std::size_t keep = 0; keep < bytes.size(); keep += keep < 64 ? 1 : 17) {
    write_file(path, bytes.substr(0, keep));
    CheckpointData loaded;
    std::string error;
    EXPECT_EQ(load_checkpoint(path, loaded, error), CheckpointLoad::kCorrupt)
        << "prefix of " << keep << " bytes was accepted";
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, TornWriteFaultLeavesPreviousCheckpointIntact) {
  const std::string path = temp_path("atomic.ckpt");
  const CheckpointData first = sample_data();
  std::string error;
  ASSERT_TRUE(write_checkpoint(path, first, nullptr, error)) << error;

  CheckpointData second = sample_data();
  second.visited = 99999;
  FaultPlan fault(FaultPlan::Site::kCkptWrite, FaultPlan::Action::kTruncateWrite, 1);
  EXPECT_FALSE(write_checkpoint(path, second, &fault, error));
  EXPECT_TRUE(fault.fired());
  EXPECT_NE(error.find("fault"), std::string::npos) << error;

  // The torn write hit the temp file only: the durable checkpoint still loads
  // and still holds the first snapshot.
  CheckpointData loaded;
  ASSERT_EQ(load_checkpoint(path, loaded, error), CheckpointLoad::kOk) << error;
  EXPECT_EQ(loaded.visited, first.visited);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ConfigHashCoversGraphShapingKnobsOnly) {
  sim::ExplorerConfig base;
  const std::uint64_t h = checkpoint_config_hash(base);

  sim::ExplorerConfig budget = base;
  budget.crash_budget += 1;
  EXPECT_NE(checkpoint_config_hash(budget), h);

  sim::ExplorerConfig symmetry = base;
  symmetry.symmetry_classes = {0, 0, 1};
  EXPECT_NE(checkpoint_config_hash(symmetry), h);

  // Resource limits are deliberately identity-neutral: resuming a run with a
  // bigger time budget is the whole point of checkpoints.
  sim::ExplorerConfig limits = base;
  limits.time_limit_ms = 1234;
  limits.mem_limit_mb = 77;
  limits.checkpoint_every = 5000;
  EXPECT_EQ(checkpoint_config_hash(limits), h);
}

check::CheckRequest spec_request(const std::string& line) {
  check::ScenarioSpec spec;
  std::vector<std::string> errors;
  check::parse_scenario_line(line, spec, errors);
  EXPECT_TRUE(errors.empty());
  check::CheckRequest request;
  request.system = check::build_spec_system(spec);
  request.budget.crash_model = spec.crash_model;
  request.budget.crash_budget = spec.crash_budget;
  request.strategy = check::Strategy::kParallelBFS;
  request.num_threads = 4;
  return request;
}

TEST(CheckpointTest, InterruptedRunResumesToIdenticalVisitedAndVerdict) {
  const std::string line = "type=Sn(3) n=3 model=independent budget=2";
  const std::string path = temp_path("resume.ckpt");

  // Ground truth: the uninterrupted run.
  const check::CheckReport full = check::check(spec_request(line));
  ASSERT_TRUE(full.clean);
  ASSERT_GT(full.stats.visited, 1000u);

  // Interrupted run: a forced stop early on, with a final checkpoint written
  // at exit (the in-process analog of dying after the last periodic write).
  FaultPlan stop(FaultPlan::Site::kBatch, FaultPlan::Action::kStop, 3);
  check::CheckRequest interrupted = spec_request(line);
  interrupted.checkpoint_path = path;
  interrupted.checkpoint_label = line;
  interrupted.fault = &stop;
  const check::CheckReport partial = check::check(std::move(interrupted));
  EXPECT_TRUE(partial.stats.truncated);
  EXPECT_EQ(partial.stats.stop_reason, sim::StopReason::kForcedStop);
  EXPECT_LT(partial.stats.visited, full.stats.visited);

  // Resume from the cut: identical visited count, identical verdict.
  CheckpointData snapshot;
  std::string error;
  ASSERT_EQ(load_checkpoint(path, snapshot, error), CheckpointLoad::kOk) << error;
  EXPECT_EQ(snapshot.visited, partial.stats.visited);
  check::CheckRequest resumed = spec_request(line);
  resumed.checkpoint_path = path;
  resumed.checkpoint_label = line;
  resumed.resume = &snapshot;
  const check::CheckReport report = check::check(std::move(resumed));
  EXPECT_TRUE(report.clean);
  EXPECT_FALSE(report.stats.truncated);
  EXPECT_EQ(report.stats.visited, full.stats.visited);
  std::remove(path.c_str());
}

TEST(CheckpointTest, ViolationFoundBeforeTheCutSurvivesResume) {
  // naive-register violates with zero crashes; force a stop late enough that
  // the violation is (very likely) already recorded, checkpoint, resume, and
  // the resumed run must still report the violation with its full schedule.
  const std::string line = "type=register n=2 model=independent budget=0 "
                           "algo=naive-register";
  const std::string path = temp_path("viol.ckpt");

  check::CheckRequest direct = spec_request(line);
  const check::CheckReport truth = check::check(std::move(direct));
  ASSERT_FALSE(truth.clean);

  check::CheckRequest first = spec_request(line);
  first.checkpoint_path = path;
  first.checkpoint_label = line;
  const check::CheckReport with_ckpt = check::check(std::move(first));
  ASSERT_FALSE(with_ckpt.clean);

  CheckpointData snapshot;
  std::string error;
  ASSERT_EQ(load_checkpoint(path, snapshot, error), CheckpointLoad::kOk) << error;
  ASSERT_TRUE(snapshot.has_violation);

  check::CheckRequest resumed = spec_request(line);
  resumed.checkpoint_path = path;
  resumed.checkpoint_label = line;
  resumed.resume = &snapshot;
  const check::CheckReport report = check::check(std::move(resumed));
  EXPECT_FALSE(report.clean);
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_EQ(report.violation->property, truth.violation->property);
  EXPECT_FALSE(report.violation->schedule.empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rcons::engine
