#include "engine/portfolio.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "typesys/zoo.hpp"

namespace rcons::engine {
namespace {

TEST(PortfolioTest, TeamConsensusScenariosRunCleanUnderBothModels) {
  PortfolioConfig config;
  config.num_threads = 2;
  Portfolio portfolio(config);
  auto sn2 = typesys::make_type("Sn(2)");
  auto cas = typesys::make_type("compare-and-swap");
  ASSERT_NE(sn2, nullptr);
  ASSERT_NE(cas, nullptr);
  portfolio.add_team_consensus(*sn2, 2, sim::CrashModel::kIndependent, 2);
  portfolio.add_team_consensus(*sn2, 2, sim::CrashModel::kSimultaneous, 2);
  portfolio.add_team_consensus(*cas, 2, sim::CrashModel::kIndependent, 2);
  EXPECT_EQ(portfolio.size(), 3u);

  const auto results = portfolio.run_all();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    EXPECT_TRUE(result.clean) << result.scenario.name << ": "
                              << result.violation->description;
    EXPECT_GT(result.stats.visited, 0u);
    EXPECT_FALSE(result.scenario.name.empty());
  }
  // Scenario ordering is preserved and names carry the configuration.
  EXPECT_NE(results[0].scenario.name.find("independent"), std::string::npos);
  EXPECT_NE(results[1].scenario.name.find("simultaneous"), std::string::npos);
}

TEST(PortfolioTest, CustomScenarioReportsViolation) {
  // A custom-built broken system: both processes decide their own input.
  struct DecideOwnInput {
    typesys::Value input = 0;
    sim::StepResult step(sim::Memory&) { return sim::StepResult::decided(input); }
    void encode(std::vector<typesys::Value>& out) const { out.push_back(0); }
  };

  Portfolio portfolio(PortfolioConfig{.num_threads = 2});
  Scenario scenario;
  scenario.name = "broken/decide-own-input";
  scenario.crash_budget = 0;
  scenario.num_processes = 2;
  scenario.object_type = "none";
  scenario.build = [] {
    ScenarioSystem system;
    system.processes.emplace_back(DecideOwnInput{1});
    system.processes.emplace_back(DecideOwnInput{2});
    system.properties.valid_outputs = {1, 2};
    return system;
  };
  portfolio.add(std::move(scenario));

  const auto results = portfolio.run_all();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].clean);
  ASSERT_TRUE(results[0].violation.has_value());
  EXPECT_NE(results[0].violation->description.find("agreement"), std::string::npos);
}

TEST(PortfolioTest, VerdictTableHasOneRowPerScenario) {
  Portfolio portfolio(PortfolioConfig{.num_threads = 1});
  auto sn2 = typesys::make_type("Sn(2)");
  portfolio.add_team_consensus(*sn2, 2, sim::CrashModel::kIndependent, 1);
  portfolio.add_team_consensus(*sn2, 2, sim::CrashModel::kSimultaneous, 1);
  const auto results = portfolio.run_all();

  std::ostringstream out;
  Portfolio::verdict_table(results).print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("clean"), std::string::npos);
  EXPECT_NE(text.find("team-consensus/Sn(2)"), std::string::npos);
  // Header + separator + one row per scenario.
  int lines = 0;
  for (const char ch : text) lines += ch == '\n';
  EXPECT_EQ(lines, 2 + static_cast<int>(results.size()));
}

}  // namespace
}  // namespace rcons::engine
