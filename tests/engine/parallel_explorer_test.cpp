// Parity and determinism of the parallel engine against the sequential
// explorer: both must report the same verdict (violation-or-clean) on every
// covered configuration, and repeated parallel runs must agree with each
// other (ISSUE: deterministic first-violation reporting).
#include "engine/parallel_explorer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "hierarchy/recording.hpp"
#include "rc/team_consensus.hpp"
#include "sim/explorer.hpp"
#include "typesys/zoo.hpp"

namespace rcons::engine {
namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

// Deliberately broken "consensus" (same as the sequential explorer's tests):
// write your input, decide what you read — register non-solvability.
struct BrokenConsensus {
  sim::RegId reg = 0;
  typesys::Value input = 0;
  int pc = 0;

  sim::StepResult step(sim::Memory& memory) {
    if (pc == 0) {
      memory.write(reg, input);
      pc = 1;
      return sim::StepResult::running();
    }
    return sim::StepResult::decided(memory.read(reg));
  }
  void encode(std::vector<typesys::Value>& out) const { out.push_back(pc); }
};

ParallelExplorerConfig parallel_config(const sim::ExplorerConfig& base,
                                       int threads = 4, int shard_bits = 4) {
  ParallelExplorerConfig config;
  static_cast<sim::ExplorerConfig&>(config) = base;
  config.num_threads = threads;
  config.shard_bits = shard_bits;
  return config;
}

struct ModelCase {
  std::string type_name;
  int n;
  int crash_budget;
  sim::CrashModel crash_model;
};

std::vector<ModelCase> model_cases() {
  return {
      {"Sn(2)", 2, 3, sim::CrashModel::kIndependent},
      {"Sn(3)", 3, 2, sim::CrashModel::kIndependent},
      {"Sn(3)", 3, 2, sim::CrashModel::kSimultaneous},
      {"Tn(4)", 2, 3, sim::CrashModel::kIndependent},
      {"compare-and-swap", 3, 2, sim::CrashModel::kIndependent},
      {"sticky-bit", 3, 2, sim::CrashModel::kSimultaneous},
      {"consensus-object", 2, 3, sim::CrashModel::kIndependent},
      {"readable-queue", 2, 3, sim::CrashModel::kIndependent},
  };
}

class ParallelParityTest : public ::testing::TestWithParam<ModelCase> {};

// On clean instances the two explorers traverse the identical deduplicated
// graph, so not only the verdict but every counter must match.
TEST_P(ParallelParityTest, AgreesWithSequentialExplorer) {
  const ModelCase& c = GetParam();
  auto type = typesys::make_type(c.type_name);
  ASSERT_NE(type, nullptr);
  ASSERT_TRUE(hierarchy::is_recording(*type, c.n)) << "precondition";
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, c.n, kInputA, kInputB);

  sim::ExplorerConfig base;
  base.crash_model = c.crash_model;
  base.crash_budget = c.crash_budget;
  base.properties.valid_outputs = {kInputA, kInputB};

  sim::Explorer sequential(system.memory, system.processes, base);
  const auto sequential_violation = sequential.run();

  ParallelExplorer parallel(system.memory, system.processes, parallel_config(base));
  const auto parallel_violation = parallel.run();

  EXPECT_EQ(sequential_violation.has_value(), parallel_violation.has_value());
  EXPECT_EQ(sequential.stats().visited, parallel.stats().visited);
  EXPECT_EQ(sequential.stats().transitions, parallel.stats().transitions);
  EXPECT_EQ(sequential.stats().decisions, parallel.stats().decisions);
  EXPECT_EQ(sequential.stats().terminal_states, parallel.stats().terminal_states);
}

INSTANTIATE_TEST_SUITE_P(Types, ParallelParityTest,
                         ::testing::ValuesIn(model_cases()),
                         [](const ::testing::TestParamInfo<ModelCase>& info) {
                           std::string name =
                               info.param.type_name + "_n" +
                               std::to_string(info.param.n) + "_c" +
                               std::to_string(info.param.crash_budget) +
                               (info.param.crash_model == sim::CrashModel::kIndependent
                                    ? "_ind"
                                    : "_sim");
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(ParallelExplorerTest, FindsAgreementViolationDeterministically) {
  sim::ExplorerConfig base;
  base.crash_budget = 0;
  base.properties.valid_outputs = {1, 2};

  std::optional<sim::Violation> first;
  for (int run = 0; run < 2; ++run) {
    sim::Memory memory;
    const sim::RegId reg = memory.add_register();
    std::vector<sim::Process> processes;
    processes.emplace_back(BrokenConsensus{reg, 1, 0});
    processes.emplace_back(BrokenConsensus{reg, 2, 0});
    ParallelExplorer explorer(std::move(memory), std::move(processes),
                              parallel_config(base));
    const auto violation = explorer.run();
    ASSERT_TRUE(violation.has_value());
    EXPECT_NE(violation->description.find("agreement"), std::string::npos);
    EXPECT_FALSE(violation->schedule.empty());
    if (run == 0) {
      first = violation;
    } else {
      // Deterministic reporting: identical description and schedule both runs.
      EXPECT_EQ(violation->description, first->description);
      EXPECT_EQ(violation->schedule, first->schedule);
    }
  }
}

TEST(ParallelExplorerTest, ReportsLowestTraceViolation) {
  // The two-process BrokenConsensus violation space is symmetric; the lowest
  // lexicographic schedule starts with step(p0), so the winning report must
  // blame the interleaving that begins there — exactly what the sequential
  // DFS (which tries step(p0) first) reports.
  sim::Memory memory;
  const sim::RegId reg = memory.add_register();
  std::vector<sim::Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  processes.emplace_back(BrokenConsensus{reg, 2, 0});
  sim::ExplorerConfig base;
  base.crash_budget = 0;
  base.properties.valid_outputs = {1, 2};

  sim::Explorer sequential(memory, processes, base);
  const auto sequential_violation = sequential.run();
  ASSERT_TRUE(sequential_violation.has_value());

  ParallelExplorer parallel(memory, processes, parallel_config(base));
  const auto parallel_violation = parallel.run();
  ASSERT_TRUE(parallel_violation.has_value());
  EXPECT_EQ(parallel_violation->trace().rfind("step(p0)", 0), 0u)
      << "trace: " << parallel_violation->trace();
}

TEST(ParallelExplorerDeathTest, NegativeNumThreadsAsserts) {
  sim::Memory memory;
  const sim::RegId reg = memory.add_register();
  std::vector<sim::Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  ParallelExplorerConfig config;
  config.num_threads = -1;
  EXPECT_DEATH(ParallelExplorer(std::move(memory), std::move(processes), config),
               "num_threads");
}

TEST(ParallelExplorerDeathTest, ShardBitsOutOfRangeAsserts) {
  // -1 selects auto-tuning (pick_shard_bits); anything below, or above 16,
  // is invalid.
  for (const int shard_bits : {-2, 17}) {
    sim::Memory memory;
    const sim::RegId reg = memory.add_register();
    std::vector<sim::Process> processes;
    processes.emplace_back(BrokenConsensus{reg, 1, 0});
    ParallelExplorerConfig config;
    config.shard_bits = shard_bits;
    EXPECT_DEATH(ParallelExplorer(std::move(memory), std::move(processes), config),
                 "shard_bits");
  }
}

TEST(ParallelExplorerTest, AutoShardBitsResolvesFromThreadsAndExpectation) {
  sim::Memory memory;
  const sim::RegId reg = memory.add_register();
  std::vector<sim::Process> processes;
  processes.emplace_back(BrokenConsensus{reg, 1, 0});
  ParallelExplorerConfig config;
  config.num_threads = 4;
  config.expected_states = 1'000'000;
  ParallelExplorer explorer(std::move(memory), std::move(processes), config);
  EXPECT_EQ(explorer.shard_bits(), pick_shard_bits(4, 1'000'000));
}

TEST(ParallelExplorerTest, FindsValidityViolation) {
  struct ConstantDecider {
    typesys::Value value = 0;
    sim::StepResult step(sim::Memory&) { return sim::StepResult::decided(value); }
    void encode(std::vector<typesys::Value>& out) const { out.push_back(0); }
  };
  sim::Memory memory;
  std::vector<sim::Process> processes;
  processes.emplace_back(ConstantDecider{99});
  sim::ExplorerConfig base;
  base.crash_budget = 0;
  base.properties.valid_outputs = {1, 2};
  ParallelExplorer explorer(std::move(memory), std::move(processes),
                            parallel_config(base));
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("validity"), std::string::npos);
}

TEST(ParallelExplorerTest, WaitFreedomBoundFlagsLoopers) {
  struct Looper {
    sim::RegId reg = 0;
    long count = 0;
    sim::StepResult step(sim::Memory& memory) {
      memory.write(reg, 1);
      count += 1;
      return sim::StepResult::running();
    }
    void encode(std::vector<typesys::Value>& out) const { out.push_back(count); }
  };
  sim::Memory memory;
  const sim::RegId reg = memory.add_register();
  std::vector<sim::Process> processes;
  processes.emplace_back(Looper{reg, 0});
  sim::ExplorerConfig base;
  base.crash_budget = 0;
  base.max_steps_per_run = 10;
  ParallelExplorer explorer(std::move(memory), std::move(processes),
                            parallel_config(base));
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("wait-freedom"), std::string::npos);
}

TEST(ParallelExplorerTest, TruncatesAtMaxVisited) {
  auto type = typesys::make_type("Sn(3)");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 3, kInputA, kInputB);
  sim::ExplorerConfig base;
  base.crash_budget = 2;
  base.properties.valid_outputs = {kInputA, kInputB};
  base.max_visited = 100;
  ParallelExplorer explorer(std::move(system.memory), std::move(system.processes),
                            parallel_config(base));
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("max_visited"), std::string::npos);
  EXPECT_TRUE(explorer.stats().truncated);
}

TEST(ParallelExplorerTest, RunIsRepeatableOnSameInstance) {
  auto type = typesys::make_type("Sn(2)");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 2, kInputA, kInputB);
  sim::ExplorerConfig base;
  base.crash_budget = 3;
  base.properties.valid_outputs = {kInputA, kInputB};
  ParallelExplorer explorer(std::move(system.memory), std::move(system.processes),
                            parallel_config(base));
  const auto first = explorer.run();
  const auto first_visited = explorer.stats().visited;
  const auto second = explorer.run();
  EXPECT_FALSE(first.has_value());
  EXPECT_FALSE(second.has_value());
  EXPECT_EQ(explorer.stats().visited, first_visited);
  EXPECT_GT(explorer.visited_stats().total, 0u);
}

TEST(ParallelExplorerTest, SingleThreadSubsumesSequential) {
  auto type = typesys::make_type("compare-and-swap");
  rc::TeamConsensusSystem system =
      rc::make_team_consensus_system(*type, 2, kInputA, kInputB);
  sim::ExplorerConfig base;
  base.crash_budget = 2;
  base.properties.valid_outputs = {kInputA, kInputB};

  sim::Explorer sequential(system.memory, system.processes, base);
  const auto sequential_violation = sequential.run();

  ParallelExplorer single(system.memory, system.processes,
                          parallel_config(base, /*threads=*/1, /*shard_bits=*/0));
  const auto single_violation = single.run();
  EXPECT_EQ(sequential_violation.has_value(), single_violation.has_value());
  EXPECT_EQ(sequential.stats().visited, single.stats().visited);
}

}  // namespace
}  // namespace rcons::engine
