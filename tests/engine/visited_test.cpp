#include "engine/visited.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/hash.hpp"

namespace rcons::engine {
namespace {

util::U128 key(std::uint64_t i) {
  // Spread keys across the whole hi-space so shard selection sees variety.
  return util::U128{util::mix64(i), util::mix64(i + 0x1234'5678ULL)};
}

TEST(ShardedVisitedTest, InsertDeduplicates) {
  ShardedVisited visited(4);
  EXPECT_TRUE(visited.insert(key(1)));
  EXPECT_FALSE(visited.insert(key(1)));
  EXPECT_TRUE(visited.insert(key(2)));
  EXPECT_EQ(visited.size(), 2u);
}

TEST(ShardedVisitedTest, SingleShardDegenerateWorks) {
  ShardedVisited visited(0);
  EXPECT_EQ(visited.num_shards(), 1);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(visited.insert(key(i)));
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(visited.insert(key(i)));
  EXPECT_EQ(visited.size(), 100u);
}

TEST(ShardedVisitedTest, LoadStatsTrackOccupancyAndDuplicates) {
  ShardedVisited visited(3);
  EXPECT_EQ(visited.num_shards(), 8);
  for (std::uint64_t i = 0; i < 1000; ++i) visited.insert(key(i));
  for (std::uint64_t i = 0; i < 10; ++i) visited.insert(key(i));
  const auto stats = visited.load_stats();
  EXPECT_EQ(stats.total, 1000u);
  EXPECT_EQ(stats.duplicate_inserts, 10u);
  EXPECT_GE(stats.max_shard, stats.min_shard);
  // Mixed keys should spread roughly evenly: no shard more than 2x the mean.
  EXPECT_LT(stats.imbalance, 2.0);
}

TEST(ShardedVisitedTest, ConcurrentInsertsAgreeOnWinners) {
  // T threads race to insert overlapping ranges; exactly one insert per key
  // must win, and the set must end up with every key exactly once.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 20'000;
  ShardedVisited visited(6);
  std::vector<std::uint64_t> wins(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &visited, &wins] {
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        if (visited.insert(key(i))) wins[static_cast<std::size_t>(t)] += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total_wins = 0;
  for (const std::uint64_t w : wins) total_wins += w;
  EXPECT_EQ(total_wins, kKeys);
  EXPECT_EQ(visited.size(), kKeys);
}

}  // namespace
}  // namespace rcons::engine
