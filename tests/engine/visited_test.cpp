#include "engine/visited.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "util/hash.hpp"

namespace rcons::engine {
namespace {

util::U128 key(std::uint64_t i) {
  // Spread keys across the whole hi-space so shard selection sees variety.
  return util::U128{util::mix64(i), util::mix64(i + 0x1234'5678ULL)};
}

TEST(ShardedVisitedTest, InsertDeduplicates) {
  ShardedVisited visited(4);
  EXPECT_TRUE(visited.insert(key(1)));
  EXPECT_FALSE(visited.insert(key(1)));
  EXPECT_TRUE(visited.insert(key(2)));
  EXPECT_EQ(visited.size(), 2u);
}

TEST(ShardedVisitedTest, SingleShardDegenerateWorks) {
  ShardedVisited visited(0);
  EXPECT_EQ(visited.num_shards(), 1);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_TRUE(visited.insert(key(i)));
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(visited.insert(key(i)));
  EXPECT_EQ(visited.size(), 100u);
}

TEST(ShardedVisitedTest, LoadStatsTrackOccupancyAndDuplicates) {
  ShardedVisited visited(3);
  EXPECT_EQ(visited.num_shards(), 8);
  for (std::uint64_t i = 0; i < 1000; ++i) visited.insert(key(i));
  // Duplicates are reported to the caller (the lock-free table keeps no
  // shared duplicate tally), so count the losing inserts here.
  std::uint64_t duplicates = 0;
  for (std::uint64_t i = 0; i < 10; ++i) {
    if (!visited.insert(key(i))) duplicates += 1;
  }
  EXPECT_EQ(duplicates, 10u);
  const auto stats = visited.load_stats();
  EXPECT_EQ(stats.total, 1000u);
  EXPECT_GE(stats.max_shard, stats.min_shard);
  // Mixed keys should spread roughly evenly: no shard more than 2x the mean.
  EXPECT_LT(stats.imbalance, 2.0);
}

TEST(ShardedVisitedTest, ConcurrentInsertsAgreeOnWinners) {
  // T threads race to insert overlapping ranges; exactly one insert per key
  // must win, and the set must end up with every key exactly once.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 20'000;
  ShardedVisited visited(6);
  std::vector<std::uint64_t> wins(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &visited, &wins] {
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        if (visited.insert(key(i))) wins[static_cast<std::size_t>(t)] += 1;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  std::uint64_t total_wins = 0;
  for (const std::uint64_t w : wins) total_wins += w;
  EXPECT_EQ(total_wins, kKeys);
  EXPECT_EQ(visited.size(), kKeys);
}

TEST(ShardedVisitedTest, ProbeStatsAccumulateCallerSide) {
  // Probe work is tallied in the caller's OpStats (the lock-free table keeps
  // no shared counters a hot insert would have to touch).
  ShardedVisited visited(2);
  CasTable::OpStats ops;
  for (std::uint64_t i = 0; i < 500; ++i) visited.insert(key(i), &ops);
  EXPECT_GE(ops.probe_ops, 500u);
  EXPECT_GE(ops.probe_total, ops.probe_ops);
  EXPECT_GE(ops.max_probe, 1u);
  // 500 keys over 4 minimally-sized shards must have grown incrementally.
  EXPECT_GT(visited.load_stats().rehashes, 0u);
}

TEST(ShardedVisitedTest, PresizingAvoidsRehashes) {
  ShardedVisited visited(2, /*expected_states=*/10'000);
  for (std::uint64_t i = 0; i < 10'000; ++i) visited.insert(key(i));
  EXPECT_EQ(visited.size(), 10'000u);
  EXPECT_EQ(visited.load_stats().rehashes, 0u);
}

TEST(PickShardBitsTest, SingleWorkerGetsSequentialLayout) {
  EXPECT_EQ(pick_shard_bits(1, 0), 0);
  EXPECT_EQ(pick_shard_bits(1, 1'000'000'000), 0);
  EXPECT_EQ(pick_shard_bits(0, 1'000'000), 0);
}

TEST(PickShardBitsTest, ContentionBoundScalesWithThreads) {
  // Unknown state space: shards >= 8 * threads, rounded up to a power of two.
  EXPECT_EQ(pick_shard_bits(2, 0), 4);    // 16 shards
  EXPECT_EQ(pick_shard_bits(4, 0), 5);    // 32 shards
  EXPECT_EQ(pick_shard_bits(8, 0), 6);    // 64 shards
  EXPECT_EQ(pick_shard_bits(16, 0), 7);   // 128 shards
  EXPECT_EQ(pick_shard_bits(64, 0), 9);   // 512 shards
  // Monotone in the thread count.
  int previous = 0;
  for (int threads = 1; threads <= 128; threads *= 2) {
    const int bits = pick_shard_bits(threads, 0);
    EXPECT_GE(bits, previous) << threads;
    previous = bits;
  }
}

TEST(PickShardBitsTest, OccupancyCapShrinksSmallStateSpaces) {
  // A 1000-state space should not be spread over more than ~1000/64 shards.
  EXPECT_LE(pick_shard_bits(8, 1000), 4);
  // A tiny space degenerates to very few shards no matter the thread count.
  EXPECT_EQ(pick_shard_bits(64, 100), 0);
  // A huge space leaves the contention bound in charge.
  EXPECT_EQ(pick_shard_bits(8, 100'000'000), 6);
}

TEST(PickShardBitsTest, ResultAlwaysWithinSupportedRange) {
  for (const int threads : {1, 2, 7, 33, 1000, 100'000}) {
    for (const std::uint64_t states : {std::uint64_t{0}, std::uint64_t{1},
                                       std::uint64_t{1'000'000},
                                       ~std::uint64_t{0}}) {
      const int bits = pick_shard_bits(threads, states);
      EXPECT_GE(bits, 0) << threads << " " << states;
      EXPECT_LE(bits, 16) << threads << " " << states;
    }
  }
}

}  // namespace
}  // namespace rcons::engine
