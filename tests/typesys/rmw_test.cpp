#include "typesys/types/rmw.hpp"

#include <gtest/gtest.h>

#include "support/helpers.hpp"

namespace rcons::typesys {
namespace {

// --- TestAndSet ---

TEST(TestAndSetTest, ReturnsOldBitAndSets) {
  TestAndSetType tas;
  const Operation op = tas.operations(2).front();
  Transition t = tas.apply({0}, op);
  EXPECT_EQ(t.response, 0);
  EXPECT_EQ(t.next, StateRepr{1});
  t = tas.apply({1}, op);
  EXPECT_EQ(t.response, 1);
  EXPECT_EQ(t.next, StateRepr{1});
}

TEST(TestAndSetTest, StateForgetsWinner) {
  // The key fact behind "TAS is not 2-recording": the post-update state is
  // {1} regardless of who updated first.
  TestAndSetType tas;
  const Operation op = tas.operations(2).front();
  EXPECT_EQ(test::apply_sequence(tas, {0}, {op}), StateRepr{1});
  EXPECT_EQ(test::apply_sequence(tas, {0}, {op, op}), StateRepr{1});
}

// --- FetchAndIncrement ---

TEST(FetchAndIncrementTest, ReturnsOldCount) {
  FetchAndIncrementType fai;
  const Operation op = fai.operations(2).front();
  EXPECT_EQ(fai.apply({0}, op).response, 0);
  EXPECT_EQ(fai.apply({41}, op).response, 41);
  EXPECT_EQ(fai.apply({41}, op).next, StateRepr{42});
}

// --- Swap ---

TEST(SwapTest, ReturnsOldValueInstallsNew) {
  SwapType swap;
  const Operation swap2 = test::op_by_name(swap, 3, "Swap(2)");
  const Transition t = swap.apply({kBottom}, swap2);
  EXPECT_EQ(t.response, kBottom);
  EXPECT_EQ(t.next, StateRepr{2});
}

TEST(SwapTest, LastSwapWinsInState) {
  SwapType swap;
  const Operation swap1 = test::op_by_name(swap, 3, "Swap(1)");
  const Operation swap2 = test::op_by_name(swap, 3, "Swap(2)");
  EXPECT_EQ(test::apply_sequence(swap, {kBottom}, {swap1, swap2}), StateRepr{2});
  EXPECT_EQ(test::apply_sequence(swap, {kBottom}, {swap2, swap1}), StateRepr{1});
}

// --- CompareAndSwap ---

TEST(CompareAndSwapTest, FirstCasWinsForever) {
  CompareAndSwapType cas;
  const Operation cas1 = test::op_by_name(cas, 3, "CAS(⊥,1)");
  const Operation cas2 = test::op_by_name(cas, 3, "CAS(⊥,2)");
  Transition t = cas.apply({kBottom}, cas1);
  EXPECT_EQ(t.response, kBottom);  // success signalled by returning ⊥
  EXPECT_EQ(t.next, StateRepr{1});
  t = cas.apply({1}, cas2);
  EXPECT_EQ(t.response, 1);  // failure returns the recorded winner
  EXPECT_EQ(t.next, StateRepr{1});
}

TEST(CompareAndSwapTest, StateRecordsWinnerPermanently) {
  CompareAndSwapType cas;
  const Operation cas1 = test::op_by_name(cas, 4, "CAS(⊥,1)");
  const Operation cas3 = test::op_by_name(cas, 4, "CAS(⊥,3)");
  const Operation cas4 = test::op_by_name(cas, 4, "CAS(⊥,4)");
  EXPECT_EQ(test::apply_sequence(cas, {kBottom}, {cas3, cas1, cas4, cas1}),
            StateRepr{3});
}

// --- StickyBit ---

TEST(StickyBitTest, SticksOnFirstWrite) {
  StickyBitType sticky;
  const Operation stick0 = test::op_by_name(sticky, 2, "Stick(0)");
  const Operation stick1 = test::op_by_name(sticky, 2, "Stick(1)");
  Transition t = sticky.apply({kBottom}, stick1);
  EXPECT_EQ(t.response, 1);
  EXPECT_EQ(t.next, StateRepr{1});
  t = sticky.apply({1}, stick0);
  EXPECT_EQ(t.response, 1);  // already stuck
  EXPECT_EQ(t.next, StateRepr{1});
}

// --- ConsensusObject ---

TEST(ConsensusObjectTest, FirstProposalDecides) {
  ConsensusObjectType cons;
  const Operation p1 = test::op_by_name(cons, 3, "Propose(1)");
  const Operation p2 = test::op_by_name(cons, 3, "Propose(2)");
  Transition t = cons.apply({kBottom}, p2);
  EXPECT_EQ(t.response, 2);
  t = cons.apply(t.next, p1);
  EXPECT_EQ(t.response, 2);  // everyone learns the decision
  EXPECT_EQ(t.next, StateRepr{2});
}

// --- Counter / MaxRegister (the weak commutative types) ---

TEST(CounterTest, IncrementAcksAndCounts) {
  CounterType counter;
  const Operation inc = counter.operations(2).front();
  const Transition t = counter.apply({7}, inc);
  EXPECT_EQ(t.response, kAck);
  EXPECT_EQ(t.next, StateRepr{8});
}

TEST(MaxRegisterTest, KeepsMaximum) {
  MaxRegisterType maxreg;
  const Operation w2 = test::op_by_name(maxreg, 3, "WriteMax(2)");
  const Operation w3 = test::op_by_name(maxreg, 3, "WriteMax(3)");
  EXPECT_EQ(test::apply_sequence(maxreg, {0}, {w3, w2}), StateRepr{3});
  EXPECT_EQ(test::apply_sequence(maxreg, {0}, {w2, w3}), StateRepr{3});
}

}  // namespace
}  // namespace rcons::typesys
