// Conformance of T_n to Figure 5 of the paper (Proposition 19).
#include "typesys/types/tn.hpp"

#include <gtest/gtest.h>

#include "support/helpers.hpp"

namespace rcons::typesys {
namespace {

constexpr Value kB = 0;  // ⊥ winner encoding
constexpr Value kA = 1;
constexpr Value kBwin = 2;

class TnFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(TnFamilyTest, FirstUpdateInstallsWinnerAndReturnsIt) {
  TnType tn(GetParam());
  const Operation op_a = test::op_by_name(tn, GetParam(), "opA");
  const Operation op_b = test::op_by_name(tn, GetParam(), "opB");
  Transition t = tn.apply({kB, 0, 0}, op_a);
  EXPECT_EQ(t.next, (StateRepr{kA, 0, 0}));
  EXPECT_EQ(t.response, TnType::kRespA);
  t = tn.apply({kB, 0, 0}, op_b);
  EXPECT_EQ(t.next, (StateRepr{kBwin, 0, 0}));
  EXPECT_EQ(t.response, TnType::kRespB);
}

TEST_P(TnFamilyTest, SubsequentUpdatesReturnRecordedWinner) {
  TnType tn(GetParam());
  const Operation op_a = test::op_by_name(tn, GetParam(), "opA");
  const Operation op_b = test::op_by_name(tn, GetParam(), "opB");
  // After opB goes first, an opA by another process still learns "B".
  const Transition first = tn.apply({kB, 0, 0}, op_b);
  const Transition second = tn.apply(first.next, op_a);
  EXPECT_EQ(second.response, TnType::kRespB);
}

TEST_P(TnFamilyTest, ForgetsAfterTooManyOpAs) {
  // Figure 5: performing opA more than ⌊n/2⌋ times wraps col and resets the
  // object to (⊥,0,0) — the "forgetting" that breaks (n-1)-recording.
  const int n = GetParam();
  TnType tn(n);
  const Operation op_a = test::op_by_name(tn, n, "opA");
  StateRepr state{kB, 0, 0};
  const int col_mod = n / 2;
  for (int i = 0; i < col_mod + 1; ++i) state = tn.apply(state, op_a).next;
  EXPECT_EQ(state, (StateRepr{kB, 0, 0}));
}

TEST_P(TnFamilyTest, ForgetsAfterTooManyOpBs) {
  const int n = GetParam();
  TnType tn(n);
  const Operation op_b = test::op_by_name(tn, n, "opB");
  StateRepr state{kB, 0, 0};
  const int row_mod = (n + 1) / 2;
  for (int i = 0; i < row_mod + 1; ++i) state = tn.apply(state, op_b).next;
  EXPECT_EQ(state, (StateRepr{kB, 0, 0}));
}

TEST_P(TnFamilyTest, MixedSequenceWithinBudgetKeepsWinner) {
  // One process per team member: ⌊n/2⌋ opA's and ⌈n/2⌉ opB's total never
  // wrap when the first update is counted (first does not advance counters).
  const int n = GetParam();
  TnType tn(n);
  const Operation op_a = test::op_by_name(tn, n, "opA");
  const Operation op_b = test::op_by_name(tn, n, "opB");
  StateRepr state{kB, 0, 0};
  state = tn.apply(state, op_a).next;  // A wins
  for (int i = 1; i < n / 2; ++i) state = tn.apply(state, op_a).next;
  for (int i = 0; i < (n + 1) / 2; ++i) {
    const Transition t = tn.apply(state, op_b);
    EXPECT_EQ(t.response, TnType::kRespA) << "winner must persist";
    state = t.next;
  }
}

TEST_P(TnFamilyTest, StateSpaceMatchesFigure5) {
  const int n = GetParam();
  TnType tn(n);
  // 1 + 2 * ⌈n/2⌉ * ⌊n/2⌋ states.
  const std::size_t expected =
      1 + 2 * static_cast<std::size_t>((n + 1) / 2) * static_cast<std::size_t>(n / 2);
  EXPECT_EQ(tn.initial_states(n).size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Family, TnFamilyTest, ::testing::Values(4, 5, 6, 7, 8));

TEST(TnTypeTest, FormatState) {
  TnType tn(6);
  EXPECT_EQ(tn.format_state({0, 0, 0}), "(⊥,0,0)");
  EXPECT_EQ(tn.format_state({1, 2, 1}), "(A,2,1)");
  EXPECT_EQ(tn.format_state({2, 0, 2}), "(B,0,2)");
}

}  // namespace
}  // namespace rcons::typesys
