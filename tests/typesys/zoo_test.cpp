#include "typesys/zoo.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace rcons::typesys {
namespace {

TEST(ZooTest, AllEntriesHaveDistinctNames) {
  const auto zoo = make_zoo(5);
  std::unordered_set<std::string> names;
  for (const ZooEntry& entry : zoo) {
    EXPECT_TRUE(names.insert(entry.type->name()).second)
        << "duplicate zoo entry: " << entry.type->name();
  }
  EXPECT_GE(zoo.size(), 14u);
}

TEST(ZooTest, MakeTypeRoundTripsEveryZooName) {
  for (const ZooEntry& entry : make_zoo(6)) {
    auto rebuilt = make_type(entry.type->name());
    ASSERT_NE(rebuilt, nullptr) << entry.type->name();
    EXPECT_EQ(rebuilt->name(), entry.type->name());
    EXPECT_EQ(rebuilt->readable(), entry.type->readable());
  }
}

TEST(ZooTest, MakeTypeParsesFamilies) {
  auto tn = make_type("Tn(7)");
  ASSERT_NE(tn, nullptr);
  EXPECT_EQ(tn->name(), "Tn(7)");
  auto sn = make_type("Sn(2)");
  ASSERT_NE(sn, nullptr);
  EXPECT_EQ(sn->name(), "Sn(2)");
}

TEST(ZooTest, MakeTypeRejectsUnknown) {
  EXPECT_EQ(make_type("flux-capacitor"), nullptr);
}

TEST(ZooTest, EveryTypeHasTotalSpecOnCandidates) {
  // Property sweep: apply every candidate op to every candidate initial state
  // — the specification must be total and deterministic.
  for (const ZooEntry& entry : make_zoo(5)) {
    const auto ops = entry.type->operations(4);
    ASSERT_FALSE(ops.empty()) << entry.type->name();
    for (const StateRepr& q : entry.type->initial_states(4)) {
      for (const Operation& op : ops) {
        const Transition once = entry.type->apply(q, op);
        const Transition twice = entry.type->apply(q, op);
        EXPECT_EQ(once.next, twice.next) << entry.type->name();
        EXPECT_EQ(once.response, twice.response) << entry.type->name();
      }
    }
  }
}

}  // namespace
}  // namespace rcons::typesys
