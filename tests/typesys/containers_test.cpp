#include "typesys/types/containers.hpp"

#include <gtest/gtest.h>

#include "support/helpers.hpp"

namespace rcons::typesys {
namespace {

TEST(StackTypeTest, PushPopLifo) {
  StackType stack(/*readable=*/true);
  const Operation push1 = test::op_by_name(stack, 3, "Push(1)");
  const Operation push2 = test::op_by_name(stack, 3, "Push(2)");
  const Operation pop = test::op_by_name(stack, 3, "Pop");
  StateRepr s = test::apply_sequence(stack, {}, {push1, push2});
  EXPECT_EQ(s, (StateRepr{1, 2}));
  const Transition t = stack.apply(s, pop);
  EXPECT_EQ(t.response, 2);  // LIFO
  EXPECT_EQ(t.next, StateRepr{1});
}

TEST(StackTypeTest, PopOnEmptyReturnsBottom) {
  StackType stack(true);
  const Operation pop = test::op_by_name(stack, 2, "Pop");
  const Transition t = stack.apply({}, pop);
  EXPECT_EQ(t.response, kBottom);
  EXPECT_TRUE(t.next.empty());
}

TEST(StackTypeTest, PushOnFullIsNoOp) {
  StackType stack(true, /*capacity=*/2);
  const Operation push1 = test::op_by_name(stack, 2, "Push(1)");
  const StateRepr full = test::apply_sequence(stack, {}, {push1, push1});
  const Transition t = stack.apply(full, push1);
  EXPECT_EQ(t.next, full);
}

TEST(StackTypeTest, StateRecordsPushOrder) {
  // This is why the bare stack machine is n-recording for every n — yet the
  // paper's Appendix H proves rcons(stack) = 1, because the standard stack is
  // not readable and cannot exploit this record (Theorem 8 needs Read).
  StackType stack(false);
  const Operation push1 = test::op_by_name(stack, 2, "Push(1)");
  const Operation push2 = test::op_by_name(stack, 2, "Push(2)");
  EXPECT_NE(test::apply_sequence(stack, {}, {push1, push2}),
            test::apply_sequence(stack, {}, {push2, push1}));
}

TEST(StackTypeTest, ReadabilityIsAVariant) {
  EXPECT_FALSE(StackType(false).readable());
  EXPECT_TRUE(StackType(true).readable());
  EXPECT_EQ(StackType(false).name(), "stack");
  EXPECT_EQ(StackType(true).name(), "readable-stack");
}

TEST(QueueTypeTest, EnqueueDequeueFifo) {
  QueueType queue(true);
  const Operation enq1 = test::op_by_name(queue, 3, "Enqueue(1)");
  const Operation enq2 = test::op_by_name(queue, 3, "Enqueue(2)");
  const Operation deq = test::op_by_name(queue, 3, "Dequeue");
  StateRepr s = test::apply_sequence(queue, {}, {enq1, enq2});
  EXPECT_EQ(s, (StateRepr{1, 2}));
  const Transition t = queue.apply(s, deq);
  EXPECT_EQ(t.response, 1);  // FIFO
  EXPECT_EQ(t.next, StateRepr{2});
}

TEST(QueueTypeTest, DequeueOnEmptyReturnsBottom) {
  QueueType queue(false);
  const Operation deq = test::op_by_name(queue, 2, "Dequeue");
  EXPECT_EQ(queue.apply({}, deq).response, kBottom);
}

TEST(QueueTypeTest, CandidateInitialStatesIncludeNonEmpty) {
  QueueType queue(true);
  const auto states = queue.initial_states(2);
  ASSERT_GE(states.size(), 2u);
  EXPECT_TRUE(states[0].empty());
  EXPECT_FALSE(states[1].empty());
}

}  // namespace
}  // namespace rcons::typesys
