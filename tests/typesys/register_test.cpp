#include "typesys/types/register.hpp"

#include <gtest/gtest.h>

#include "support/helpers.hpp"

namespace rcons::typesys {
namespace {

TEST(RegisterTypeTest, InitialStateIsBottom) {
  RegisterType reg;
  const auto states = reg.initial_states(2);
  ASSERT_FALSE(states.empty());
  EXPECT_EQ(states.front(), StateRepr{kBottom});
}

TEST(RegisterTypeTest, OffersOneWritePerProcess) {
  RegisterType reg;
  EXPECT_EQ(reg.operations(2).size(), 2u);
  EXPECT_EQ(reg.operations(5).size(), 5u);
  EXPECT_EQ(reg.operations(5)[2].name, "Write(3)");
}

TEST(RegisterTypeTest, WriteInstallsValueAndAcks) {
  RegisterType reg;
  const Operation write2 = test::op_by_name(reg, 3, "Write(2)");
  const Transition t = reg.apply({kBottom}, write2);
  EXPECT_EQ(t.next, StateRepr{2});
  EXPECT_EQ(t.response, kAck);
}

TEST(RegisterTypeTest, WritesOverwrite) {
  RegisterType reg;
  const Operation write1 = test::op_by_name(reg, 3, "Write(1)");
  const Operation write3 = test::op_by_name(reg, 3, "Write(3)");
  const StateRepr end = test::apply_sequence(reg, {kBottom}, {write1, write3});
  EXPECT_EQ(end, StateRepr{3});
  // Order of the last write is all that matters.
  const StateRepr end2 = test::apply_sequence(reg, {kBottom}, {write3, write1, write3});
  EXPECT_EQ(end2, StateRepr{3});
}

TEST(RegisterTypeTest, IsReadable) {
  EXPECT_TRUE(RegisterType().readable());
}

TEST(RegisterTypeTest, FormatStateShowsBottom) {
  RegisterType reg;
  EXPECT_EQ(reg.format_state({kBottom}), "(⊥)");
  EXPECT_EQ(reg.format_state({7}), "(7)");
}

}  // namespace
}  // namespace rcons::typesys
