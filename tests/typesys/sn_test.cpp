// Conformance of S_n to Figure 6 of the paper (Proposition 21).
#include "typesys/types/sn.hpp"

#include <gtest/gtest.h>

#include "support/helpers.hpp"

namespace rcons::typesys {
namespace {

class SnFamilyTest : public ::testing::TestWithParam<int> {};

TEST_P(SnFamilyTest, OpAFromInitialInstallsA) {
  const int n = GetParam();
  SnType sn(n);
  const Operation op_a = test::op_by_name(sn, n, "opA");
  const Transition t = sn.apply({SnType::kWinnerB, 0}, op_a);
  EXPECT_EQ(t.next, (StateRepr{SnType::kWinnerA, 0}));
  EXPECT_EQ(t.response, kAck);
}

TEST_P(SnFamilyTest, OpAElsewhereResetsToInitial) {
  // Figure 6, lines 84-86: opA from any state other than (B,0) goes to (B,0).
  const int n = GetParam();
  SnType sn(n);
  const Operation op_a = test::op_by_name(sn, n, "opA");
  EXPECT_EQ(sn.apply({SnType::kWinnerA, 0}, op_a).next,
            (StateRepr{SnType::kWinnerB, 0}));
  EXPECT_EQ(sn.apply({SnType::kWinnerB, 1}, op_a).next,
            (StateRepr{SnType::kWinnerB, 0}));
}

TEST_P(SnFamilyTest, OpBCountsRowsAndPreservesWinner) {
  const int n = GetParam();
  SnType sn(n);
  const Operation op_b = test::op_by_name(sn, n, "opB");
  StateRepr state{SnType::kWinnerA, 0};
  for (int i = 1; i < n; ++i) {
    state = sn.apply(state, op_b).next;
    EXPECT_EQ(state[0], SnType::kWinnerA) << "winner must persist below the wrap";
    EXPECT_EQ(state[1], i);
  }
}

TEST_P(SnFamilyTest, NthOpBForgets) {
  // After n opB's the row wraps and the winner is forced back to B — more
  // opB's than the n-1 processes of team B can perform (one each).
  const int n = GetParam();
  SnType sn(n);
  const Operation op_b = test::op_by_name(sn, n, "opB");
  StateRepr state{SnType::kWinnerA, 0};
  for (int i = 0; i < n; ++i) state = sn.apply(state, op_b).next;
  EXPECT_EQ(state, (StateRepr{SnType::kWinnerB, 0}));
}

TEST_P(SnFamilyTest, AllOperationsReturnAck) {
  // Figure 6: every operation of S_n returns ack — the type is useful only
  // through its readable state, making it the cleanest n-recording witness.
  const int n = GetParam();
  SnType sn(n);
  for (const Operation& op : sn.operations(n)) {
    for (const StateRepr& q : sn.initial_states(n)) {
      EXPECT_EQ(sn.apply(q, op).response, kAck);
    }
  }
}

TEST_P(SnFamilyTest, StateSpaceIs2N) {
  const int n = GetParam();
  EXPECT_EQ(SnType(n).initial_states(n).size(), static_cast<std::size_t>(2 * n));
}

INSTANTIATE_TEST_SUITE_P(Family, SnFamilyTest, ::testing::Values(2, 3, 4, 5, 6, 8));

TEST(SnTypeTest, FormatState) {
  SnType sn(4);
  EXPECT_EQ(sn.format_state({SnType::kWinnerA, 3}), "(A,3)");
  EXPECT_EQ(sn.format_state({SnType::kWinnerB, 0}), "(B,0)");
}

}  // namespace
}  // namespace rcons::typesys
