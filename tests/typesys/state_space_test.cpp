#include "typesys/state_space.hpp"

#include <gtest/gtest.h>

#include "typesys/transition_cache.hpp"
#include "typesys/types/rmw.hpp"
#include "typesys/types/sn.hpp"

namespace rcons::typesys {
namespace {

TEST(StateSpaceTest, InternsDensely) {
  StateSpace space;
  EXPECT_EQ(space.intern({1, 2}), 0);
  EXPECT_EQ(space.intern({3}), 1);
  EXPECT_EQ(space.intern({1, 2}), 0);  // idempotent
  EXPECT_EQ(space.size(), 2u);
  EXPECT_EQ(space.repr(1), StateRepr{3});
}

TEST(StateSpaceTest, EmptyReprIsAValidState) {
  StateSpace space;
  const StateId empty = space.intern({});
  EXPECT_EQ(space.repr(empty), StateRepr{});
  EXPECT_EQ(space.intern({}), empty);
}

TEST(TransitionCacheTest, AppliesAndMemoizes) {
  TestAndSetType tas;
  TransitionCache cache(tas, 2);
  ASSERT_EQ(cache.num_ops(), 1);
  const StateId q0 = cache.initial_states().front();
  const auto step1 = cache.apply(q0, 0);
  const auto step2 = cache.apply(q0, 0);
  EXPECT_EQ(step1.next, step2.next);
  EXPECT_EQ(step1.response, step2.response);
  EXPECT_EQ(step1.response, 0);
  // The set state transitions to itself.
  const auto step3 = cache.apply(step1.next, 0);
  EXPECT_EQ(step3.next, step1.next);
  EXPECT_EQ(step3.response, 1);
}

TEST(TransitionCacheTest, InitialStatesPreInterned) {
  SnType sn(3);
  TransitionCache cache(sn, 3);
  EXPECT_EQ(cache.initial_states().size(), 6u);  // 2n candidate states
  // All candidate states distinct.
  for (std::size_t i = 0; i < cache.initial_states().size(); ++i) {
    for (std::size_t j = i + 1; j < cache.initial_states().size(); ++j) {
      EXPECT_NE(cache.initial_states()[i], cache.initial_states()[j]);
    }
  }
}

TEST(TransitionCacheTest, DiscoversOnlyReachableStates) {
  TestAndSetType tas;
  TransitionCache cache(tas, 2);
  const std::size_t before = cache.discovered_states();
  cache.apply(cache.initial_states().front(), 0);
  EXPECT_LE(cache.discovered_states(), before + 1);
}

}  // namespace
}  // namespace rcons::typesys
