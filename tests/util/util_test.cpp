#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace rcons::util {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(3);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0, 1000));
    EXPECT_TRUE(rng.chance(1000, 1000));
  }
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(HashTest, RangeHashSensitiveToOrderAndLength) {
  const std::int64_t a[] = {1, 2, 3};
  const std::int64_t b[] = {3, 2, 1};
  const std::int64_t c[] = {1, 2};
  EXPECT_NE(hash_range(a, 3), hash_range(b, 3));
  EXPECT_NE(hash_range(a, 3), hash_range(c, 2));
  EXPECT_EQ(hash_range(a, 3), hash_range(a, 3));
}

TEST(HashTest, VecHashUsableInSets) {
  std::unordered_set<std::vector<std::int64_t>, VecHash> set;
  set.insert({1, 2});
  set.insert({1, 2});
  set.insert({2, 1});
  set.insert(std::vector<std::int64_t>{});
  EXPECT_EQ(set.size(), 3u);
}

TEST(HashTest, U128HashSeparatesSymmetricFingerprints) {
  // An unmixed combine of the halves (plain XOR maps {lo, hi}, {hi, lo}, and
  // any lo == hi pair together; the pre-avalanche `lo ^ hi * K` let low-bit
  // structure leak straight into the bucket index). The mixed hash must
  // separate swapped halves and spread structured keys.
  const U128 a{0x1234'5678'9abc'def0ULL, 0x0fed'cba9'8765'4321ULL};
  const U128 swapped{a.hi, a.lo};
  U128Hash hash;
  EXPECT_NE(hash(a), hash(swapped));
  // All-equal-halves keys must spread across buckets instead of all hashing
  // to a constant region.
  std::unordered_set<std::size_t> buckets;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    buckets.insert(hash(U128{v, v}) & 1023);
  }
  EXPECT_GT(buckets.size(), 600u);
}

TEST(HashTest, U128UsableInSets) {
  std::unordered_set<U128, U128Hash> set;
  set.insert(U128{1, 2});
  set.insert(U128{1, 2});
  set.insert(U128{2, 1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(JsonTest, WritesNestedStructureWithCommas) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.key_value("name", "bench");
    json.key("rows");
    json.begin_array();
    json.begin_object();
    json.key_value("n", 3);
    json.key_value("clean", true);
    json.end_object();
    json.begin_object();
    json.key_value("n", 4);
    json.key_value("clean", false);
    json.end_object();
    json.end_array();
    json.end_object();
  }
  EXPECT_EQ(out.str(),
            "{\"name\":\"bench\",\"rows\":"
            "[{\"n\":3,\"clean\":true},{\"n\":4,\"clean\":false}]}");
}

TEST(JsonTest, EscapesStrings) {
  std::ostringstream out;
  {
    JsonWriter json(out);
    json.begin_object();
    json.key_value("s", "a\"b\\c\nd");
    json.end_object();
  }
  EXPECT_EQ(out.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer-name", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_NE(text.find("| longer-name "), std::string::npos);
  // Header separator present.
  EXPECT_NE(text.find("|---"), std::string::npos);
}

}  // namespace
}  // namespace rcons::util
