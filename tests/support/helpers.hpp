// Shared test helpers.
#ifndef RCONS_TESTS_SUPPORT_HELPERS_HPP
#define RCONS_TESTS_SUPPORT_HELPERS_HPP

#include <memory>
#include <string>
#include <vector>

#include "typesys/object_type.hpp"
#include "typesys/transition_cache.hpp"
#include "typesys/zoo.hpp"
#include "util/assert.hpp"

namespace rcons::test {

// Applies a named operation sequence to a state via the type's spec.
inline typesys::StateRepr apply_sequence(const typesys::ObjectType& type,
                                         typesys::StateRepr state,
                                         const std::vector<typesys::Operation>& ops) {
  for (const typesys::Operation& op : ops) {
    state = type.apply(state, op).next;
  }
  return state;
}

// Finds a candidate operation by name for an n-process analysis.
inline typesys::Operation op_by_name(const typesys::ObjectType& type, int n,
                                     const std::string& name) {
  for (const typesys::Operation& op : type.operations(n)) {
    if (op.name == name) return op;
  }
  RCONS_ASSERT_MSG(false, ("no candidate operation named " + name).c_str());
  return {};
}

}  // namespace rcons::test

#endif  // RCONS_TESTS_SUPPORT_HELPERS_HPP
