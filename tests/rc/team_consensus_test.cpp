// Exhaustive model checking of the Figure 2 recoverable team consensus
// algorithm (Theorem 8): every interleaving, every crash placement up to the
// budget, across a spectrum of n-recording witness types.
#include "rc/team_consensus.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "hierarchy/recording.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

constexpr typesys::Value kInputA = 101;
constexpr typesys::Value kInputB = 202;

struct ModelCase {
  std::string type_name;
  int n;
  int crash_budget;
};

std::vector<ModelCase> model_cases() {
  return {
      {"Sn(2)", 2, 3},        {"Sn(3)", 3, 2},           {"Sn(4)", 4, 1},
      {"Tn(4)", 2, 3},        {"compare-and-swap", 2, 3}, {"compare-and-swap", 3, 2},
      {"sticky-bit", 3, 2},   {"consensus-object", 2, 3}, {"readable-stack", 3, 2},
      {"readable-queue", 2, 3},
  };
}

class TeamConsensusModelTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(TeamConsensusModelTest, AgreementValidityWaitFreedomUnderCrashes) {
  const ModelCase& c = GetParam();
  auto type = typesys::make_type(c.type_name);
  ASSERT_NE(type, nullptr);
  ASSERT_TRUE(hierarchy::is_recording(*type, c.n)) << "precondition";
  TeamConsensusSystem system = make_team_consensus_system(*type, c.n, kInputA, kInputB);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {kInputA, kInputB};
  request.budget.crash_budget = c.crash_budget;
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
  EXPECT_TRUE(report.complete);
  EXPECT_GT(report.stats.decisions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Types, TeamConsensusModelTest,
                         ::testing::ValuesIn(model_cases()),
                         [](const ::testing::TestParamInfo<ModelCase>& param_info) {
                           std::string name = param_info.param.type_name + "_n" +
                                              std::to_string(param_info.param.n) + "_c" +
                                              std::to_string(param_info.param.crash_budget);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(TeamConsensusTest, PlanNormalizationEnsuresQ0NotInQB) {
  // S_n's natural witness has q0 ∈ Q_B (the opB team can return the object to
  // (B,0)); the plan must swap teams so that the Figure 2 code's assumption
  // q0 ∉ Q_B holds.
  auto type = typesys::make_type("Sn(3)");
  auto cache = std::make_shared<typesys::TransitionCache>(*type, 3);
  auto witness = hierarchy::find_recording_witness(*cache);
  ASSERT_TRUE(witness.has_value());
  auto plan = TeamConsensusPlan::create(cache, *witness);
  // After normalization: q0 ∉ (current) Q_B ≡ q0 ∈ Q_A or in neither.
  const bool q0_in_qa = plan->q_a.contains(plan->q0);
  if (plan->swapped) {
    EXPECT_TRUE(q0_in_qa);             // swapped because q0 was in old Q_B
    EXPECT_EQ(plan->team_size[1], 1);  // condition 3 forces |new B| = 1
  }
}

TEST(TeamConsensusTest, SoloRunDecidesOwnTeamInput) {
  // A process running alone must decide its own team's input.
  auto type = typesys::make_type("Sn(3)");
  TeamConsensusSystem system = make_team_consensus_system(*type, 3, kInputA, kInputB);
  // Run only process 0 by exhausting it via replay-like single scheduling:
  sim::Memory memory = system.memory;
  sim::Process solo = system.processes.front();
  sim::StepResult result = sim::StepResult::running();
  for (int i = 0; i < 10 && result.kind != sim::StepResult::Kind::kDecided; ++i) {
    result = solo.step(memory);
  }
  ASSERT_EQ(result.kind, sim::StepResult::Kind::kDecided);
  EXPECT_EQ(result.decision, system.inputs.front());
}

TEST(TeamConsensusTest, RandomStressLargeInstances) {
  // Instances beyond exhaustive reach: seeded random schedules with heavy
  // crash injection.
  auto type = typesys::make_type("Sn(6)");
  TeamConsensusSystem system = make_team_consensus_system(*type, 6, kInputA, kInputB);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {kInputA, kInputB};
  request.budget.crash_budget = 12;
  request.strategy = check::Strategy::kRandomized;
  request.seed = 1;
  request.runs = 50;
  request.crash_per_mille = 150;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean) << report.violation->description << "\n  schedule: "
                            << report.violation->trace();
  EXPECT_EQ(report.runs, 50);
  EXPECT_EQ(report.incomplete_runs, 0);
  EXPECT_FALSE(report.complete);  // sampling is never a proof
}

// The paper's Section 3.1 discussion: if team B's processes deferred to team
// A without the |B| = 1 restriction, agreement breaks. We implement exactly
// that broken variant and let the explorer find the counterexample — the
// scenario the paper narrates.
class BrokenDeferProgram {
 public:
  BrokenDeferProgram(TeamConsensusInstance instance, int role, typesys::Value input)
      : instance_(std::move(instance)), role_(role), input_(input) {}

  sim::StepResult step(sim::Memory& memory) {
    const TeamConsensusPlan& plan = *instance_.plan;
    const bool on_team_a =
        plan.team[static_cast<std::size_t>(role_)] == hierarchy::kTeamA;
    switch (pc_) {
      case 0:
        memory.write(on_team_a ? instance_.reg_a : instance_.reg_b, input_);
        pc_ = 1;
        return sim::StepResult::running();
      case 1:
        q_ = memory.object_state(instance_.obj);
        if (q_ != plan.q0) {
          pc_ = 5;
        } else {
          // BROKEN: defers without checking |B| == 1.
          pc_ = on_team_a ? 3 : 2;
        }
        return sim::StepResult::running();
      case 2: {
        const typesys::Value announced = memory.read(instance_.reg_a);
        if (announced != typesys::kBottom) return sim::StepResult::decided(announced);
        pc_ = 3;
        return sim::StepResult::running();
      }
      case 3:
        memory.apply(instance_.obj, plan.ops[static_cast<std::size_t>(role_)]);
        pc_ = 4;
        return sim::StepResult::running();
      case 4:
        q_ = memory.object_state(instance_.obj);
        pc_ = 5;
        return sim::StepResult::running();
      default: {
        const bool a_won = plan.q_a.contains(static_cast<typesys::StateId>(q_));
        return sim::StepResult::decided(
            memory.read(a_won ? instance_.reg_a : instance_.reg_b));
      }
    }
  }

  void encode(std::vector<typesys::Value>& out) const {
    out.push_back(pc_);
    out.push_back(q_);
  }

 private:
  TeamConsensusInstance instance_;
  int role_;
  typesys::Value input_;
  int pc_ = 0;
  typesys::Value q_ = 0;
};

TEST(TeamConsensusTest, OmittingTeamSizeGuardViolatesAgreement) {
  // Build a witness with |B| >= 2 (CAS at n = 3 gives teams {p1} / {p2, p3};
  // we flip roles so the two-member team runs the broken defer).
  auto type = typesys::make_type("compare-and-swap");
  auto cache = std::make_shared<typesys::TransitionCache>(*type, 3);
  auto witness = hierarchy::find_recording_witness(*cache);
  ASSERT_TRUE(witness.has_value());
  // Force teams: A = {p1}, B = {p2, p3} — already the checker's shape; swap
  // so B is the bigger team if needed.
  auto plan = TeamConsensusPlan::create(cache, *witness);
  ASSERT_GE(plan->team_size[1], 2) << "need |B| >= 2 for the scenario";

  sim::Memory memory;
  const TeamConsensusInstance instance = install_team_consensus(memory, plan);
  std::vector<sim::Process> processes;
  std::vector<typesys::Value> inputs;
  for (int role = 0; role < plan->n(); ++role) {
    const typesys::Value input =
        plan->team[static_cast<std::size_t>(role)] == hierarchy::kTeamA ? kInputA
                                                                        : kInputB;
    inputs.push_back(input);
    processes.emplace_back(BrokenDeferProgram(instance, role, input));
  }
  check::CheckRequest request;
  request.system.memory = std::move(memory);
  request.system.processes = std::move(processes);
  request.system.properties.valid_outputs = {kInputA, kInputB};
  request.budget.crash_budget = 0;  // the paper's scenario needs no crashes
  request.strategy = check::Strategy::kSequentialDFS;
  const check::CheckReport report = check::check(std::move(request));
  ASSERT_FALSE(report.clean) << "broken defer should violate agreement";
  EXPECT_NE(report.violation->description.find("agreement"), std::string::npos);
}

}  // namespace
}  // namespace rcons::rc
