// rc::make_k_set_team_consensus — the k-group split construction: group
// assignment, per-group inputs, decodability, and the two verdicts that
// motivate it ((k,n)-set agreement clean under crashes; plain agreement
// violated).
#include "rc/k_set.hpp"

#include <gtest/gtest.h>

#include <set>

#include "check/check.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

check::CheckRequest request_for(KSetTeamSystem& system, sim::PropertySet properties,
                                int crash_budget) {
  properties.valid_outputs = system.inputs;
  check::CheckRequest request;
  request.system.memory = system.memory;
  request.system.processes = system.processes;
  request.system.properties = std::move(properties);
  request.budget.crash_budget = crash_budget;
  request.strategy = check::Strategy::kSequentialDFS;
  return request;
}

sim::PropertySet k_set_properties(int k) {
  sim::PropertySet properties = sim::PropertySet::none();
  properties.add({sim::PropertyKind::kKSetAgreement, k});
  properties.add({sim::PropertyKind::kValidity, 0});
  properties.add({sim::PropertyKind::kWaitFreedom, 0});
  return properties;
}

TEST(KSetTeamConsensusTest, BuildsRoundRobinGroupsWithPerGroupInputs) {
  auto type = typesys::make_type("Sn(2)");
  const KSetTeamSystem system = make_k_set_team_consensus(*type, 2, 3);
  EXPECT_EQ(system.groups, 2);
  ASSERT_EQ(system.processes.size(), 3u);
  ASSERT_EQ(system.inputs.size(), 3u);
  ASSERT_EQ(system.symmetry_classes.size(), 3u);

  // Groups are round-robin: p0 and p2 form group 0 (inputs in the 100s), p1
  // is the singleton group 1 (input in the 200s).
  EXPECT_EQ(system.inputs[0] / 100, 1);
  EXPECT_EQ(system.inputs[2] / 100, 1);
  EXPECT_EQ(system.inputs[1] / 100, 2);
  // Distinct per (group, team): the two group-0 members sit on opposite
  // teams of a size-2 witness.
  EXPECT_NE(system.inputs[0], system.inputs[2]);

  // Every program decodes — the compact interned representation applies.
  for (const sim::Process& process : system.processes) {
    EXPECT_TRUE(process.decodable());
  }
}

TEST(KSetTeamConsensusTest, KSetAgreementIsCleanUnderIndependentCrashes) {
  auto type = typesys::make_type("Sn(2)");
  KSetTeamSystem system = make_k_set_team_consensus(*type, 2, 3);
  const check::CheckReport report =
      check::check(request_for(system, k_set_properties(2), 1));
  EXPECT_TRUE(report.clean) << report.violation->description;
  EXPECT_TRUE(report.complete);
}

TEST(KSetTeamConsensusTest, PlainAgreementIsViolated) {
  // The same system judged by the classic consensus contract: two groups
  // with different inputs both decide, so agreement breaks.
  auto type = typesys::make_type("Sn(2)");
  KSetTeamSystem system = make_k_set_team_consensus(*type, 2, 3);
  const check::CheckReport report =
      check::check(request_for(system, sim::PropertySet(), 1));
  ASSERT_FALSE(report.clean);
  EXPECT_EQ(report.violation->property, sim::PropertyKind::kAgreement);
}

TEST(KSetTeamConsensusTest, SingletonGroupsDecideTheirInputWithoutMemory) {
  // k = n: every group is a singleton, nobody touches shared memory, and the
  // n distinct inputs are exactly n-set agreement.
  auto type = typesys::make_type("Sn(2)");
  KSetTeamSystem system = make_k_set_team_consensus(*type, 3, 3);
  const std::set<typesys::Value> inputs(system.inputs.begin(), system.inputs.end());
  EXPECT_EQ(inputs.size(), 3u);

  const check::CheckReport report =
      check::check(request_for(system, k_set_properties(3), 1));
  EXPECT_TRUE(report.clean);
  EXPECT_TRUE(report.complete);
}

TEST(KSetTeamConsensusTest, SymmetryDeclarationPreservesTheVerdict) {
  // Attaching the staged symmetry declaration must not change the k-set
  // verdict (classes are mostly singletons here; soundness is the point).
  auto type = typesys::make_type("Sn(2)");
  KSetTeamSystem system = make_k_set_team_consensus(*type, 2, 4);
  check::CheckRequest request = request_for(system, k_set_properties(2), 1);
  request.system.symmetry_classes = system.symmetry_classes;
  const check::CheckReport reduced = check::check(std::move(request));
  EXPECT_TRUE(reduced.clean) << reduced.violation->description;
  EXPECT_TRUE(reduced.complete);
}

}  // namespace
}  // namespace rcons::rc
