// The gap between the two hierarchies, demonstrated behaviourally: Ruppert's
// Theorem 3 construction solves consensus in the halting model, and the
// checker proves it; add a single crash and the checker exhibits an
// agreement violation — the evidence-destruction failure mode the paper's
// n-recording property is designed to rule out.
//
// Clean proofs go through Strategy::kAuto (the facade picks the backend);
// tests that pin a specific counterexample use kSequentialDFS, whose
// first-violation DFS is deterministic and cheap on dirty instances.
#include "rc/discerning_consensus.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

check::CheckRequest halting_request(HaltingConsensusSystem system,
                                    std::vector<typesys::Value> inputs,
                                    int crash_budget) {
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = std::move(inputs);
  request.budget.crash_budget = crash_budget;
  return request;
}

struct HaltingCase {
  std::string type_name;
  int witness_n;
  int participants;
};

class HaltingConsensusTest : public ::testing::TestWithParam<HaltingCase> {};

TEST_P(HaltingConsensusTest, CorrectWithoutCrashes) {
  const HaltingCase& c = GetParam();
  auto type = typesys::make_type(c.type_name);
  std::vector<typesys::Value> inputs;
  for (int i = 0; i < c.participants; ++i) inputs.push_back(100 + i);
  HaltingConsensusSystem system = make_halting_consensus(*type, c.witness_n, inputs);
  check::CheckRequest request =
      halting_request(std::move(system), inputs, /*crash_budget=*/0);
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HaltingConsensusTest,
    ::testing::Values(HaltingCase{"test-and-set", 2, 2},
                      HaltingCase{"fetch-and-increment", 2, 2},
                      HaltingCase{"swap", 2, 2}, HaltingCase{"Tn(4)", 4, 4},
                      HaltingCase{"Tn(5)", 5, 4}, HaltingCase{"Sn(3)", 3, 3},
                      HaltingCase{"compare-and-swap", 4, 4}),
    [](const ::testing::TestParamInfo<HaltingCase>& param_info) {
      std::string name = param_info.param.type_name + "_w" +
                         std::to_string(param_info.param.witness_n) + "_k" +
                         std::to_string(param_info.param.participants);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(HaltingNegativeTest, TasConsensusBreaksUnderOneCrash) {
  auto type = typesys::make_type("test-and-set");
  HaltingConsensusSystem system = make_halting_consensus(*type, 2, {5, 6});
  check::CheckRequest request =
      halting_request(std::move(system), {5, 6}, /*crash_budget=*/1);
  request.strategy = check::Strategy::kSequentialDFS;
  const check::CheckReport report = check::check(std::move(request));
  ASSERT_FALSE(report.clean);
  EXPECT_NE(report.violation->description.find("agreement"), std::string::npos);
}

TEST(HaltingNegativeTest, TnConsensusBreaksUnderCrashes) {
  // cons(T_4) = 4 but rcons(T_4) < 4: the halting algorithm over T_4 must
  // fail for 4 processes once crashes are possible (Theorem 14 says nothing
  // recoverable exists; this exhibits the concrete failure of this
  // particular algorithm).
  auto type = typesys::make_type("Tn(4)");
  HaltingConsensusSystem system = make_halting_consensus(*type, 4, {1, 2, 3, 4});
  check::CheckRequest request =
      halting_request(std::move(system), {1, 2, 3, 4}, /*crash_budget=*/2);
  request.budget.max_visited = 40'000'000;
  request.strategy = check::Strategy::kSequentialDFS;
  const check::CheckReport report = check::check(std::move(request));
  ASSERT_FALSE(report.clean);
}

TEST(HaltingNegativeTest, EvenCasBreaksWhenAlgorithmIsResponseBased) {
  // Subtle: rcons(CAS) = ∞, yet the *response-based* Theorem 3 algorithm
  // still breaks under crashes — a re-run re-applies CAS and observes a
  // (response, state) pair outside both R-sets, deciding the wrong register.
  // Solving RC with CAS requires the state-based Figure 2 algorithm; this
  // test pins down that the weakness is the algorithm, not the type.
  auto type = typesys::make_type("compare-and-swap");
  HaltingConsensusSystem system = make_halting_consensus(*type, 2, {5, 6});
  check::CheckRequest request =
      halting_request(std::move(system), {5, 6}, /*crash_budget=*/2);
  request.strategy = check::Strategy::kSequentialDFS;
  EXPECT_FALSE(check::check(std::move(request)).clean);
}

}  // namespace
}  // namespace rcons::rc
