// The gap between the two hierarchies, demonstrated behaviourally: Ruppert's
// Theorem 3 construction solves consensus in the halting model, and the
// explorer proves it; add a single crash and the explorer exhibits an
// agreement violation — the evidence-destruction failure mode the paper's
// n-recording property is designed to rule out.
#include "rc/discerning_consensus.hpp"

#include <gtest/gtest.h>

#include "sim/explorer.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

struct HaltingCase {
  std::string type_name;
  int witness_n;
  int participants;
};

class HaltingConsensusTest : public ::testing::TestWithParam<HaltingCase> {};

TEST_P(HaltingConsensusTest, CorrectWithoutCrashes) {
  const HaltingCase& c = GetParam();
  auto type = typesys::make_type(c.type_name);
  std::vector<typesys::Value> inputs;
  for (int i = 0; i < c.participants; ++i) inputs.push_back(100 + i);
  HaltingConsensusSystem system = make_halting_consensus(*type, c.witness_n, inputs);
  sim::ExplorerConfig config;
  config.crash_budget = 0;
  config.valid_outputs = inputs;
  sim::Explorer explorer(std::move(system.memory), std::move(system.processes), config);
  const auto violation = explorer.run();
  EXPECT_FALSE(violation.has_value())
      << violation->description << "\n  trace: " << violation->trace;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HaltingConsensusTest,
    ::testing::Values(HaltingCase{"test-and-set", 2, 2},
                      HaltingCase{"fetch-and-increment", 2, 2},
                      HaltingCase{"swap", 2, 2}, HaltingCase{"Tn(4)", 4, 4},
                      HaltingCase{"Tn(5)", 5, 4}, HaltingCase{"Sn(3)", 3, 3},
                      HaltingCase{"compare-and-swap", 4, 4}),
    [](const ::testing::TestParamInfo<HaltingCase>& param_info) {
      std::string name = param_info.param.type_name + "_w" +
                         std::to_string(param_info.param.witness_n) + "_k" +
                         std::to_string(param_info.param.participants);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(HaltingNegativeTest, TasConsensusBreaksUnderOneCrash) {
  auto type = typesys::make_type("test-and-set");
  HaltingConsensusSystem system = make_halting_consensus(*type, 2, {5, 6});
  sim::ExplorerConfig config;
  config.crash_budget = 1;
  config.valid_outputs = {5, 6};
  sim::Explorer explorer(std::move(system.memory), std::move(system.processes), config);
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
  EXPECT_NE(violation->description.find("agreement"), std::string::npos);
}

TEST(HaltingNegativeTest, TnConsensusBreaksUnderCrashes) {
  // cons(T_4) = 4 but rcons(T_4) < 4: the halting algorithm over T_4 must
  // fail for 4 processes once crashes are possible (Theorem 14 says nothing
  // recoverable exists; this exhibits the concrete failure of this
  // particular algorithm).
  auto type = typesys::make_type("Tn(4)");
  HaltingConsensusSystem system = make_halting_consensus(*type, 4, {1, 2, 3, 4});
  sim::ExplorerConfig config;
  config.crash_budget = 2;
  config.valid_outputs = {1, 2, 3, 4};
  config.max_visited = 40'000'000;
  sim::Explorer explorer(std::move(system.memory), std::move(system.processes), config);
  const auto violation = explorer.run();
  ASSERT_TRUE(violation.has_value());
}

TEST(HaltingNegativeTest, EvenCasBreaksWhenAlgorithmIsResponseBased) {
  // Subtle: rcons(CAS) = ∞, yet the *response-based* Theorem 3 algorithm
  // still breaks under crashes — a re-run re-applies CAS and observes a
  // (response, state) pair outside both R-sets, deciding the wrong register.
  // Solving RC with CAS requires the state-based Figure 2 algorithm; this
  // test pins down that the weakness is the algorithm, not the type.
  auto type = typesys::make_type("compare-and-swap");
  HaltingConsensusSystem system = make_halting_consensus(*type, 2, {5, 6});
  sim::ExplorerConfig config;
  config.crash_budget = 2;
  config.valid_outputs = {5, 6};
  sim::Explorer explorer(std::move(system.memory), std::move(system.processes), config);
  EXPECT_TRUE(explorer.run().has_value());
}

}  // namespace
}  // namespace rcons::rc
