// Symmetry declarations for the tournament and staged systems
// (rc::staged_symmetry_classes): soundness on the binary tournaments (their
// classes are provably singletons — attaching them must not change any
// verdict or count) and a real visited-set reduction on the flat staged
// team-consensus system, where same-team same-op roles are interchangeable.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "check/check.hpp"
#include "check/scenario_spec.hpp"
#include "check/spec_system.hpp"
#include "rc/discerning_consensus.hpp"
#include "rc/tournament.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

check::CheckReport explore(check::ScenarioSystem system, int crash_budget,
                           check::CrashModel model = check::CrashModel::kIndependent) {
  check::CheckRequest request;
  request.system = std::move(system);
  request.budget.crash_budget = crash_budget;
  request.budget.crash_model = model;
  request.strategy = check::Strategy::kSequentialDFS;
  return check::check(std::move(request));
}

int distinct_classes(const std::vector<int>& classes) {
  return static_cast<int>(std::set<int>(classes.begin(), classes.end()).size());
}

TEST(StagedSymmetryTest, TournamentDeclaresOneClassPerParticipant) {
  auto type = typesys::make_type("Sn(3)");
  ASSERT_NE(type, nullptr);
  const TournamentSystem system = make_rc_tournament(*type, 3, {11, 22, 33});
  ASSERT_EQ(system.symmetry_classes.size(), system.processes.size());
  // Binary tournament participants split onto opposite teams at their lowest
  // common ancestor, so every class is a singleton (see rc/staged.hpp).
  EXPECT_EQ(distinct_classes(system.symmetry_classes),
            static_cast<int>(system.processes.size()));
}

TEST(StagedSymmetryTest, HaltingTournamentDeclarationIsSoundUnderExploration) {
  auto type = typesys::make_type("test-and-set");
  ASSERT_NE(type, nullptr);
  const std::vector<typesys::Value> inputs = {1, 2};
  HaltingConsensusSystem with = make_halting_consensus(*type, 2, inputs);
  ASSERT_EQ(with.symmetry_classes.size(), with.processes.size());

  check::ScenarioSystem plain;
  plain.memory = with.memory;
  plain.processes = with.processes;
  plain.properties.valid_outputs = inputs;
  check::ScenarioSystem declared = plain;
  declared.symmetry_classes = with.symmetry_classes;

  // Singleton classes: the declaration must be a byte-for-byte no-op — same
  // verdict (the halting-TAS agreement violation), same schedule, same count.
  const check::CheckReport without_report = explore(std::move(plain), 1);
  const check::CheckReport with_report = explore(std::move(declared), 1);
  ASSERT_FALSE(without_report.clean);
  ASSERT_FALSE(with_report.clean);
  EXPECT_EQ(with_report.violation->schedule, without_report.violation->schedule);
  EXPECT_EQ(with_report.stats.visited, without_report.stats.visited);
}

TEST(StagedSymmetryTest, SpecSymmetryOnIsHonoredForHalting) {
  check::ScenarioSpec spec;
  spec.type = "test-and-set";
  spec.n = 2;
  spec.crash_budget = 1;
  spec.algo = check::ScenarioAlgo::kHaltingTournament;

  spec.symmetry = false;
  EXPECT_TRUE(check::build_spec_system(spec).symmetry_classes.empty());
  spec.symmetry = true;
  EXPECT_EQ(check::build_spec_system(spec).symmetry_classes.size(), 2u);
}

TEST(StagedSymmetryTest, FlatStagedTeamSystemHasInterchangeableRoles) {
  // Sn(4)'s recording witness places several same-op roles on one team; the
  // flat staged composition makes them interchangeable and the declaration
  // must say so.
  auto type = typesys::make_type("Sn(4)");
  ASSERT_NE(type, nullptr);
  const StagedTeamSystem system = make_staged_team_consensus(*type, 4, 101, 202);
  ASSERT_EQ(system.symmetry_classes.size(), system.processes.size());
  EXPECT_LT(distinct_classes(system.symmetry_classes),
            static_cast<int>(system.processes.size()));
}

TEST(StagedSymmetryTest, StagedReductionShrinksVisitedSetAndPreservesVerdict) {
  auto type = typesys::make_type("Sn(4)");
  ASSERT_NE(type, nullptr);
  StagedTeamSystem built = make_staged_team_consensus(*type, 4, 101, 202);

  check::ScenarioSystem plain;
  plain.memory = built.memory;
  plain.processes = built.processes;
  plain.properties.valid_outputs = {101, 202};
  check::ScenarioSystem reduced = plain;
  reduced.symmetry_classes = built.symmetry_classes;

  const check::CheckReport plain_report = explore(std::move(plain), 1);
  const check::CheckReport reduced_report = explore(std::move(reduced), 1);
  EXPECT_TRUE(plain_report.clean);
  EXPECT_TRUE(reduced_report.clean);
  EXPECT_TRUE(plain_report.complete);
  EXPECT_TRUE(reduced_report.complete);
  // The declaration collapses permutations of interchangeable roles: the
  // visited set must shrink strictly, not just stay equal.
  EXPECT_LT(reduced_report.stats.visited, plain_report.stats.visited);
  EXPECT_GT(reduced_report.stats.store.canonical_hits, 0u);
}

TEST(StagedSymmetryTest, TournamentDeclarationPreservesCleanVerdict) {
  auto type = typesys::make_type("Sn(3)");
  ASSERT_NE(type, nullptr);
  TournamentSystem built = make_rc_tournament(*type, 3, {11, 22});

  check::ScenarioSystem plain;
  plain.memory = built.memory;
  plain.processes = built.processes;
  plain.properties.valid_outputs = {11, 22};
  check::ScenarioSystem declared = plain;
  declared.symmetry_classes = built.symmetry_classes;

  const check::CheckReport without_report = explore(std::move(plain), 1);
  const check::CheckReport with_report = explore(std::move(declared), 1);
  EXPECT_EQ(with_report.clean, without_report.clean);
  EXPECT_EQ(with_report.stats.visited, without_report.stats.visited);
}

}  // namespace
}  // namespace rcons::rc
