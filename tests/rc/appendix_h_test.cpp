// Appendix H, behaviorally: rcons(stack) = 1 although cons(stack) = 2.
//
// Herlihy's classic 2-process consensus from a (non-readable) stack: the
// stack starts holding one token; each process announces its input and pops —
// whoever gets the token went first. The paper's Appendix H proves no
// 2-process *recoverable* consensus exists from stacks and registers. We
// reproduce both directions executably:
//
//   * halting model (no crashes): the explorer proves the algorithm correct;
//   * one crash: the explorer exhibits the Figure 8 failure — the winner
//     crashes, re-pops ⊥, and defects to the loser's value.
//
// The same demonstration runs for the queue (front token = winner).
//
// Contrast: the bare stack state machine IS n-recording for every n (pushes
// record arrival order), but the standard stack is not readable, so Theorem 8
// cannot be applied — the recording evidence is locked inside a state that
// Pop responses destroy. The readable-stack variant escapes Appendix H and is
// exercised by the Figure 2 tests.
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "sim/replay.hpp"
#include "typesys/types/containers.hpp"

namespace rcons::rc {
namespace {

constexpr typesys::Value kToken = 1;

// One process of Herlihy's stack/queue 2-consensus. `remove_op` is the
// candidate op id of Pop / Dequeue.
struct TokenConsensusProgram {
  sim::ObjId obj = 0;
  sim::RegId my_reg = 0;
  sim::RegId other_reg = 0;
  typesys::OpId remove_op = 0;
  typesys::Value input = 0;
  int pc = 0;
  typesys::Value popped = 0;

  sim::StepResult step(sim::Memory& memory) {
    switch (pc) {
      case 0:
        memory.write(my_reg, input);
        pc = 1;
        return sim::StepResult::running();
      case 1:
        popped = memory.apply(obj, remove_op);
        pc = 2;
        return sim::StepResult::running();
      default:
        return sim::StepResult::decided(
            memory.read(popped == kToken ? my_reg : other_reg));
    }
  }
  void encode(std::vector<typesys::Value>& out) const {
    out.push_back(pc);
    out.push_back(popped);
  }
};

struct System {
  sim::Memory memory;
  std::vector<sim::Process> processes;
};

System make_token_system(bool use_queue) {
  System system;
  std::shared_ptr<const typesys::ObjectType> type;
  if (use_queue) {
    type = std::make_shared<const typesys::QueueType>(/*readable=*/false);
  } else {
    type = std::make_shared<const typesys::StackType>(/*readable=*/false);
  }
  auto cache = std::make_shared<typesys::TransitionCache>(type, 2);
  const typesys::OpId remove_op = cache->num_ops() - 1;  // Pop / Dequeue is last
  const typesys::StateId init = cache->intern({kToken});

  const sim::ObjId obj = system.memory.add_object(cache, init);
  const sim::RegId r0 = system.memory.add_register();
  const sim::RegId r1 = system.memory.add_register();
  system.processes.emplace_back(TokenConsensusProgram{obj, r0, r1, remove_op, 5, 0, 0});
  system.processes.emplace_back(TokenConsensusProgram{obj, r1, r0, remove_op, 6, 0, 0});
  return system;
}

class AppendixHTest : public ::testing::TestWithParam<bool> {};

TEST_P(AppendixHTest, TwoProcessConsensusCorrectWithoutCrashes) {
  System system = make_token_system(GetParam());
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {5, 6};
  request.budget.crash_budget = 0;
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
}

TEST_P(AppendixHTest, OneCrashBreaksAgreement) {
  System system = make_token_system(GetParam());
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {5, 6};
  request.budget.crash_budget = 1;
  request.strategy = check::Strategy::kSequentialDFS;
  const check::CheckReport report = check::check(std::move(request));
  ASSERT_FALSE(report.clean);
  EXPECT_NE(report.violation->description.find("agreement"), std::string::npos)
      << report.violation->description;
}

INSTANTIATE_TEST_SUITE_P(StackAndQueue, AppendixHTest, ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& param_info) {
                           return param_info.param ? "queue" : "stack";
                         });

TEST(AppendixHTest, CrashTraceMatchesFigure8Narrative) {
  // Pin the concrete counterexample: p0 wins the token, crashes, re-runs,
  // pops ⊥ and defects — while p1 also pops ⊥ and defects to p0.
  System system = make_token_system(false);
  const auto report = sim::replay(
      std::move(system.memory), std::move(system.processes),
      {
          sim::ScheduleEvent::step(0),  // p0 announces 5
          sim::ScheduleEvent::step(0),  // p0 pops the token (wins)
          sim::ScheduleEvent::crash(0),
          sim::ScheduleEvent::step(1),  // p1 announces 6
          sim::ScheduleEvent::step(1),  // p1 pops ⊥ (thinks it lost)
          sim::ScheduleEvent::step(1),  // p1 decides p0's value: 5
          sim::ScheduleEvent::step(0),  // p0 re-announces
          sim::ScheduleEvent::step(0),  // p0 pops ⊥ (evidence destroyed)
          sim::ScheduleEvent::step(0),  // p0 decides p1's value: 6
      });
  ASSERT_TRUE(report.violation.has_value());
  ASSERT_EQ(report.outputs.size(), 2u);
  EXPECT_EQ(report.outputs[0], 5);
  EXPECT_EQ(report.outputs[1], 6);
}

}  // namespace
}  // namespace rcons::rc
