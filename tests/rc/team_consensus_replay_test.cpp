// Scripted regressions for the Figure 2 narratives in Section 3.1, plus the
// simultaneous-crash sanity checks (an RC algorithm must also survive the
// weaker simultaneous model).
#include <gtest/gtest.h>

#include "check/check.hpp"
#include "rc/team_consensus.hpp"
#include "sim/replay.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

constexpr typesys::Value kInputA = 71;
constexpr typesys::Value kInputB = 72;

// Finds a role on the requested (normalized) team.
int role_on_team(const TeamConsensusPlan& plan, int team, int skip = 0) {
  for (int role = 0; role < plan.n(); ++role) {
    if (plan.team[static_cast<std::size_t>(role)] == team && skip-- == 0) return role;
  }
  ADD_FAILURE() << "no role on team " << team;
  return -1;
}

TEST(TeamConsensusReplayTest, LoneTeamBDefersToStartedTeamA) {
  // The |B| = 1 defer path (Figure 2 lines 19-20): the lone B process reads
  // the object in state q0 but sees R_A written, so it returns team A's input
  // without ever updating the object.
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(4)");
  TeamConsensusSystem system = make_team_consensus_system(*type, 4, kInputA, kInputB);
  const TeamConsensusPlan& plan = *system.plan;
  // S_n's normalized plan has the lone process on team B.
  ASSERT_EQ(plan.team_size[1], 1);
  const int lone_b = role_on_team(plan, 1);
  const int some_a = role_on_team(plan, 0);

  const auto report = sim::replay(std::move(system.memory), std::move(system.processes),
                                  {
                                      sim::ScheduleEvent::step(some_a),  // writes R_A
                                      sim::ScheduleEvent::step(lone_b),  // writes R_B
                                      sim::ScheduleEvent::step(lone_b),  // reads q0
                                      sim::ScheduleEvent::step(lone_b),  // reads R_A ≠ ⊥ → defer
                                  });
  ASSERT_TRUE(report.decisions[static_cast<std::size_t>(lone_b)].has_value());
  EXPECT_EQ(*report.decisions[static_cast<std::size_t>(lone_b)],
            system.inputs[static_cast<std::size_t>(some_a)]);
  EXPECT_FALSE(report.violation.has_value());
}

TEST(TeamConsensusReplayTest, CrashedWinnerRerunsAndStaysConsistent) {
  // Difficulty (1) from Section 3: the first updater crashes and loses its
  // response; on re-run it must still reach the same decision, because the
  // decision is read from the object's *state*, not the lost response.
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
  TeamConsensusSystem system = make_team_consensus_system(*type, 3, kInputA, kInputB);
  const int first = 0;
  std::vector<sim::ScheduleEvent> schedule = {
      sim::ScheduleEvent::step(first),  // announce
      sim::ScheduleEvent::step(first),  // read q0
      sim::ScheduleEvent::step(first),  // update (possibly defer read)
      sim::ScheduleEvent::step(first),  // second read / update
      sim::ScheduleEvent::crash(first),
  };
  // Re-run to completion.
  for (int i = 0; i < 8; ++i) schedule.push_back(sim::ScheduleEvent::step(first));
  // Everyone else runs to completion afterwards.
  for (int p = 1; p < 3; ++p) {
    for (int i = 0; i < 8; ++i) schedule.push_back(sim::ScheduleEvent::step(p));
  }
  const auto report =
      sim::replay(std::move(system.memory), std::move(system.processes), schedule);
  EXPECT_FALSE(report.violation.has_value()) << report.violation->description;
  EXPECT_GE(report.outputs.size(), 3u);
  for (const typesys::Value out : report.outputs) {
    EXPECT_EQ(out, report.outputs.front());
  }
}

TEST(TeamConsensusReplayTest, SurvivesSimultaneousCrashModelToo) {
  // Independent-crash RC must in particular survive simultaneous crashes.
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
  TeamConsensusSystem system = make_team_consensus_system(*type, 3, kInputA, kInputB);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {kInputA, kInputB};
  request.budget.crash_model = sim::CrashModel::kSimultaneous;
  request.budget.crash_budget = 2;
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
}

TEST(TeamConsensusReplayTest, ObjectAlreadyDecidedShortCircuits) {
  // A late-starting process that finds the object off q0 decides in three
  // accesses (announce, read object, read register) without updating.
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type("Sn(3)");
  TeamConsensusSystem system = make_team_consensus_system(*type, 3, kInputA, kInputB);
  std::vector<sim::ScheduleEvent> schedule;
  for (int i = 0; i < 8; ++i) schedule.push_back(sim::ScheduleEvent::step(0));
  schedule.push_back(sim::ScheduleEvent::step(1));  // announce
  schedule.push_back(sim::ScheduleEvent::step(1));  // read object (≠ q0)
  schedule.push_back(sim::ScheduleEvent::step(1));  // read winner register → decide
  const auto report =
      sim::replay(std::move(system.memory), std::move(system.processes), schedule);
  ASSERT_TRUE(report.decisions[1].has_value());
  EXPECT_EQ(*report.decisions[1], report.outputs.front());
}

}  // namespace
}  // namespace rcons::rc
