// The CAS-racing RC baseline: one step, recoverable by construction.
#include "rc/race.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

std::pair<sim::Memory, std::vector<sim::Process>> make_system(const std::string& type,
                                                              int n) {
  std::shared_ptr<const typesys::ObjectType> object_type = typesys::make_type(type);
  auto cache = std::make_shared<typesys::TransitionCache>(object_type, n);
  sim::Memory memory;
  const RaceInstance instance = install_race(memory, cache);
  std::vector<sim::Process> processes;
  for (int i = 0; i < n; ++i) {
    processes.emplace_back(RaceConsensusProgram(instance, i, i + 1));
  }
  return {std::move(memory), std::move(processes)};
}

TEST(RaceTest, ExhaustiveWithCasObject) {
  auto [memory, processes] = make_system("compare-and-swap", 3);
  check::CheckRequest request;
  request.system.memory = std::move(memory);
  request.system.processes = std::move(processes);
  request.system.properties.valid_outputs = {1, 2, 3};
  request.budget.crash_budget = 3;
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean) << report.violation->description;
}

TEST(RaceTest, ExhaustiveWithConsensusObject) {
  auto [memory, processes] = make_system("consensus-object", 4);
  check::CheckRequest request;
  request.system.memory = std::move(memory);
  request.system.processes = std::move(processes);
  request.system.properties.valid_outputs = {1, 2, 3, 4};
  request.budget.crash_budget = 2;
  request.strategy = check::Strategy::kAuto;
  EXPECT_TRUE(check::check(std::move(request)).clean);
}

TEST(RaceTest, WinnerIsFirstApplier) {
  auto [memory, processes] = make_system("compare-and-swap", 2);
  const sim::StepResult first = processes[1].step(memory);
  ASSERT_EQ(first.kind, sim::StepResult::Kind::kDecided);
  EXPECT_EQ(first.decision, 2);  // p1 raced first with input 2
  const sim::StepResult second = processes[0].step(memory);
  ASSERT_EQ(second.kind, sim::StepResult::Kind::kDecided);
  EXPECT_EQ(second.decision, 2);  // p0 observes the recorded winner
}

TEST(RaceTest, RerunAfterCrashObservesRecord) {
  auto [memory, processes] = make_system("compare-and-swap", 2);
  ASSERT_EQ(processes[0].step(memory).decision, 1);
  processes[0].reset();  // crash after deciding
  const sim::StepResult rerun = processes[0].step(memory);
  ASSERT_EQ(rerun.kind, sim::StepResult::Kind::kDecided);
  EXPECT_EQ(rerun.decision, 1);  // durable record
}

}  // namespace
}  // namespace rcons::rc
