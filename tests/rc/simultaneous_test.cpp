// Theorem 1 / Figure 4: recoverable consensus under SIMULTANEOUS crashes from
// ordinary consensus instances.
#include "rc/simultaneous.hpp"

#include <gtest/gtest.h>

#include "rc/discerning_consensus.hpp"
#include "rc/race.hpp"
#include "sim/explorer.hpp"
#include "sim/random_runner.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

using RaceFig4 = SimultaneousRCProgram<RaceConsensusProgram, RaceInstance>;
using TasFig4 = SimultaneousRCProgram<DiscerningConsensusProgram, DiscerningInstance>;

// Figure 4 over idealized consensus-object rounds.
std::pair<sim::Memory, std::vector<sim::Process>> make_race_fig4(int n, int max_rounds) {
  sim::Memory memory;
  std::shared_ptr<const typesys::ObjectType> object_type =
      typesys::make_type("consensus-object");
  auto cache = std::make_shared<typesys::TransitionCache>(object_type, n);
  auto layout = install_simultaneous<RaceInstance>(
      memory, n, max_rounds, [&]() { return install_race(memory, cache); });
  std::vector<sim::Process> processes;
  for (int i = 0; i < n; ++i) {
    // Inputs must lie in 1..n for the race inner (maps to Propose(v)).
    processes.emplace_back(RaceFig4(layout, i, i + 1));
  }
  return {std::move(memory), std::move(processes)};
}

// Figure 4 over Theorem-3 (NON-recoverable) consensus built from TAS — only
// safe because crashes are simultaneous and the Round guards keep every
// process from re-entering an instance (Lemma 27).
std::pair<sim::Memory, std::vector<sim::Process>> make_tas_fig4(int n, int max_rounds) {
  RCONS_ASSERT(n == 2);
  sim::Memory memory;
  std::shared_ptr<const typesys::ObjectType> tas = typesys::make_type("test-and-set");
  auto cache = std::make_shared<typesys::TransitionCache>(tas, n);
  auto witness = hierarchy::find_discerning_witness(*cache);
  RCONS_ASSERT(witness.has_value());
  auto plan = DiscerningPlan::create(cache, *witness);
  auto layout = install_simultaneous<DiscerningInstance>(
      memory, n, max_rounds, [&]() { return install_discerning(memory, plan); });
  std::vector<sim::Process> processes;
  for (int i = 0; i < n; ++i) {
    processes.emplace_back(TasFig4(layout, i, 100 + i));
  }
  return {std::move(memory), std::move(processes)};
}

TEST(SimultaneousTest, NoCrashesSingleRoundDecides) {
  auto [memory, processes] = make_race_fig4(3, /*max_rounds=*/2);
  sim::ExplorerConfig config;
  config.crash_budget = 0;
  config.valid_outputs = {1, 2, 3};
  sim::Explorer explorer(std::move(memory), std::move(processes), config);
  const auto violation = explorer.run();
  EXPECT_FALSE(violation.has_value())
      << violation->description << "\n  trace: " << violation->trace;
}

TEST(SimultaneousTest, ExhaustiveUnderSimultaneousCrashes) {
  for (int crashes = 1; crashes <= 2; ++crashes) {
    auto [memory, processes] = make_race_fig4(2, /*max_rounds=*/crashes + 2);
    sim::ExplorerConfig config;
    config.crash_model = sim::CrashModel::kSimultaneous;
    config.crash_budget = crashes;
    config.valid_outputs = {1, 2};
    sim::Explorer explorer(std::move(memory), std::move(processes), config);
    const auto violation = explorer.run();
    EXPECT_FALSE(violation.has_value())
        << "crashes=" << crashes << ": " << violation->description
        << "\n  trace: " << violation->trace;
  }
}

TEST(SimultaneousTest, TheoremOneWithNonRecoverableInner) {
  // The heart of Theorem 1: the inner consensus need not be recoverable.
  auto [memory, processes] = make_tas_fig4(2, /*max_rounds=*/4);
  sim::ExplorerConfig config;
  config.crash_model = sim::CrashModel::kSimultaneous;
  config.crash_budget = 2;
  config.valid_outputs = {100, 101};
  sim::Explorer explorer(std::move(memory), std::move(processes), config);
  const auto violation = explorer.run();
  EXPECT_FALSE(violation.has_value())
      << violation->description << "\n  trace: " << violation->trace;
}

TEST(SimultaneousTest, RandomStressManySimultaneousCrashes) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto [memory, processes] = make_race_fig4(4, /*max_rounds=*/14);
    sim::RandomRunConfig config;
    config.seed = seed;
    config.crash_model = sim::CrashModel::kSimultaneous;
    config.crash_per_mille = 40;
    config.max_crashes = 10;
    config.valid_outputs = {1, 2, 3, 4};
    const auto report = run_random(std::move(memory), std::move(processes), config);
    EXPECT_TRUE(report.all_decided) << "seed " << seed;
    EXPECT_FALSE(report.violation.has_value())
        << "seed " << seed << ": " << *report.violation;
  }
}

TEST(SimultaneousTest, RoundsGrowWithCrashes) {
  // The shape behind Appendix A: more simultaneous crash events force later
  // rounds (unbounded instances in the limit — Golab's lower bound).
  long steps_low = 0;
  long steps_high = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    {
      auto [memory, processes] = make_race_fig4(3, 4);
      sim::RandomRunConfig config;
      config.seed = seed;
      config.crash_model = sim::CrashModel::kSimultaneous;
      config.crash_per_mille = 0;
      const auto report = run_random(std::move(memory), std::move(processes), config);
      steps_low += report.steps;
    }
    {
      auto [memory, processes] = make_race_fig4(3, 14);
      sim::RandomRunConfig config;
      config.seed = seed;
      config.crash_model = sim::CrashModel::kSimultaneous;
      config.crash_per_mille = 60;
      config.max_crashes = 10;
      const auto report = run_random(std::move(memory), std::move(processes), config);
      steps_high += report.steps;
    }
  }
  EXPECT_GT(steps_high, steps_low);
}

}  // namespace
}  // namespace rcons::rc
