// Theorem 1 / Figure 4: recoverable consensus under SIMULTANEOUS crashes from
// ordinary consensus instances.
#include "rc/simultaneous.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "rc/discerning_consensus.hpp"
#include "rc/race.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

check::CheckRequest exhaustive_request(sim::Memory memory,
                                       std::vector<sim::Process> processes,
                                       std::vector<typesys::Value> valid,
                                       sim::CrashModel model, int crash_budget) {
  check::CheckRequest request;
  request.system.memory = std::move(memory);
  request.system.processes = std::move(processes);
  request.system.properties.valid_outputs = std::move(valid);
  request.budget.crash_model = model;
  request.budget.crash_budget = crash_budget;
  request.strategy = check::Strategy::kAuto;
  return request;
}

using RaceFig4 = SimultaneousRCProgram<RaceConsensusProgram, RaceInstance>;
using TasFig4 = SimultaneousRCProgram<DiscerningConsensusProgram, DiscerningInstance>;

// Figure 4 over idealized consensus-object rounds.
std::pair<sim::Memory, std::vector<sim::Process>> make_race_fig4(int n, int max_rounds) {
  sim::Memory memory;
  std::shared_ptr<const typesys::ObjectType> object_type =
      typesys::make_type("consensus-object");
  auto cache = std::make_shared<typesys::TransitionCache>(object_type, n);
  auto layout = install_simultaneous<RaceInstance>(
      memory, n, max_rounds, [&]() { return install_race(memory, cache); });
  std::vector<sim::Process> processes;
  for (int i = 0; i < n; ++i) {
    // Inputs must lie in 1..n for the race inner (maps to Propose(v)).
    processes.emplace_back(RaceFig4(layout, i, i + 1));
  }
  return {std::move(memory), std::move(processes)};
}

// Figure 4 over Theorem-3 (NON-recoverable) consensus built from TAS — only
// safe because crashes are simultaneous and the Round guards keep every
// process from re-entering an instance (Lemma 27).
std::pair<sim::Memory, std::vector<sim::Process>> make_tas_fig4(int n, int max_rounds) {
  RCONS_ASSERT(n == 2);
  sim::Memory memory;
  std::shared_ptr<const typesys::ObjectType> tas = typesys::make_type("test-and-set");
  auto cache = std::make_shared<typesys::TransitionCache>(tas, n);
  auto witness = hierarchy::find_discerning_witness(*cache);
  RCONS_ASSERT(witness.has_value());
  auto plan = DiscerningPlan::create(cache, *witness);
  auto layout = install_simultaneous<DiscerningInstance>(
      memory, n, max_rounds, [&]() { return install_discerning(memory, plan); });
  std::vector<sim::Process> processes;
  for (int i = 0; i < n; ++i) {
    processes.emplace_back(TasFig4(layout, i, 100 + i));
  }
  return {std::move(memory), std::move(processes)};
}

TEST(SimultaneousTest, NoCrashesSingleRoundDecides) {
  auto [memory, processes] = make_race_fig4(3, /*max_rounds=*/2);
  const check::CheckReport report = check::check(
      exhaustive_request(std::move(memory), std::move(processes), {1, 2, 3},
                         sim::CrashModel::kIndependent, 0));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
}

TEST(SimultaneousTest, ExhaustiveUnderSimultaneousCrashes) {
  for (int crashes = 1; crashes <= 2; ++crashes) {
    auto [memory, processes] = make_race_fig4(2, /*max_rounds=*/crashes + 2);
    const check::CheckReport report = check::check(
        exhaustive_request(std::move(memory), std::move(processes), {1, 2},
                           sim::CrashModel::kSimultaneous, crashes));
    EXPECT_TRUE(report.clean)
        << "crashes=" << crashes << ": " << report.violation->description
        << "\n  trace: " << report.violation->trace();
  }
}

TEST(SimultaneousTest, TheoremOneWithNonRecoverableInner) {
  // The heart of Theorem 1: the inner consensus need not be recoverable.
  auto [memory, processes] = make_tas_fig4(2, /*max_rounds=*/4);
  const check::CheckReport report = check::check(
      exhaustive_request(std::move(memory), std::move(processes), {100, 101},
                         sim::CrashModel::kSimultaneous, 2));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
}

TEST(SimultaneousTest, RandomStressManySimultaneousCrashes) {
  auto [memory, processes] = make_race_fig4(4, /*max_rounds=*/14);
  check::CheckRequest request;
  request.system.memory = std::move(memory);
  request.system.processes = std::move(processes);
  request.system.properties.valid_outputs = {1, 2, 3, 4};
  request.budget.crash_model = sim::CrashModel::kSimultaneous;
  request.budget.crash_budget = 10;
  request.strategy = check::Strategy::kRandomized;
  request.seed = 1;
  request.runs = 30;
  request.crash_per_mille = 40;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean) << report.violation->description;
  EXPECT_EQ(report.incomplete_runs, 0);
}

TEST(SimultaneousTest, RoundsGrowWithCrashes) {
  // The shape behind Appendix A: more simultaneous crash events force later
  // rounds (unbounded instances in the limit — Golab's lower bound).
  long steps_low = 0;
  long steps_high = 0;
  {
    auto [memory, processes] = make_race_fig4(3, 4);
    check::CheckRequest request;
    request.system.memory = std::move(memory);
    request.system.processes = std::move(processes);
    request.budget.crash_model = sim::CrashModel::kSimultaneous;
    request.budget.crash_budget = 0;
    request.strategy = check::Strategy::kRandomized;
    request.seed = 1;
    request.runs = 20;
    request.crash_per_mille = 0;
    steps_low = check::check(std::move(request)).total_steps;
  }
  {
    auto [memory, processes] = make_race_fig4(3, 14);
    check::CheckRequest request;
    request.system.memory = std::move(memory);
    request.system.processes = std::move(processes);
    request.budget.crash_model = sim::CrashModel::kSimultaneous;
    request.budget.crash_budget = 10;
    request.strategy = check::Strategy::kRandomized;
    request.seed = 1;
    request.runs = 20;
    request.crash_per_mille = 60;
    steps_high = check::check(std::move(request)).total_steps;
  }
  EXPECT_GT(steps_high, steps_low);
}

}  // namespace
}  // namespace rcons::rc
