// End-to-end recoverable consensus via the Proposition 30 tournament over
// Figure 2 team consensus.
#include "rc/tournament.hpp"

#include <gtest/gtest.h>

#include "check/check.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

TEST(TournamentTest, StructureMatchesParticipants) {
  auto type = typesys::make_type("Sn(4)");
  const TournamentSystem system = make_rc_tournament(*type, 4, {1, 2, 3, 4});
  EXPECT_EQ(system.processes.size(), 4u);
  EXPECT_EQ(system.instances, 3);  // binary tree over 4 leaves
  EXPECT_GE(system.max_stages, 2);
}

TEST(TournamentTest, SingleParticipantDecidesOwnInput) {
  auto type = typesys::make_type("Sn(3)");
  TournamentSystem system = make_rc_tournament(*type, 3, {77});
  sim::Memory memory = std::move(system.memory);
  const sim::StepResult result = system.processes.front().step(memory);
  ASSERT_EQ(result.kind, sim::StepResult::Kind::kDecided);
  EXPECT_EQ(result.decision, 77);
}

struct TournamentCase {
  std::string type_name;
  int witness_n;
  int participants;
  int crash_budget;
};

class TournamentModelTest : public ::testing::TestWithParam<TournamentCase> {};

TEST_P(TournamentModelTest, ExhaustiveAgreementUnderCrashes) {
  const TournamentCase& c = GetParam();
  auto type = typesys::make_type(c.type_name);
  std::vector<typesys::Value> inputs;
  for (int i = 0; i < c.participants; ++i) inputs.push_back(10 + i);
  TournamentSystem system = make_rc_tournament(*type, c.witness_n, inputs);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = inputs;
  request.budget.crash_budget = c.crash_budget;
  request.strategy = check::Strategy::kAuto;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean)
      << report.violation->description << "\n  trace: " << report.violation->trace();
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TournamentModelTest,
    ::testing::Values(TournamentCase{"Sn(2)", 2, 2, 2},
                      TournamentCase{"Sn(3)", 3, 3, 1},
                      TournamentCase{"Sn(4)", 4, 3, 1},
                      TournamentCase{"compare-and-swap", 3, 3, 1},
                      TournamentCase{"sticky-bit", 2, 2, 2}),
    [](const ::testing::TestParamInfo<TournamentCase>& param_info) {
      std::string name = param_info.param.type_name + "_w" +
                         std::to_string(param_info.param.witness_n) + "_k" +
                         std::to_string(param_info.param.participants) + "_c" +
                         std::to_string(param_info.param.crash_budget);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(TournamentTest, RandomStressSn6) {
  auto type = typesys::make_type("Sn(6)");
  std::vector<typesys::Value> inputs = {10, 20, 30, 40, 50, 60};
  TournamentSystem system = make_rc_tournament(*type, 6, inputs);
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = inputs;
  request.budget.crash_budget = 15;
  request.strategy = check::Strategy::kRandomized;
  request.seed = 1;
  request.runs = 40;
  request.crash_per_mille = 120;
  const check::CheckReport report = check::check(std::move(request));
  EXPECT_TRUE(report.clean) << report.violation->description << "\n  schedule: "
                            << report.violation->trace();
  EXPECT_EQ(report.incomplete_runs, 0);
}

TEST(TournamentTest, FewerParticipantsThanWitness) {
  // Proposition 30's remark: the n-process team consensus still works when
  // only k < n processes use it.
  auto type = typesys::make_type("Sn(5)");
  TournamentSystem system = make_rc_tournament(*type, 5, {4, 8});
  check::CheckRequest request;
  request.system.memory = std::move(system.memory);
  request.system.processes = std::move(system.processes);
  request.system.properties.valid_outputs = {4, 8};
  request.budget.crash_budget = 2;
  request.strategy = check::Strategy::kAuto;
  EXPECT_TRUE(check::check(std::move(request)).clean);
}

}  // namespace
}  // namespace rcons::rc
