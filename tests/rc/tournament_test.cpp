// End-to-end recoverable consensus via the Proposition 30 tournament over
// Figure 2 team consensus.
#include "rc/tournament.hpp"

#include <gtest/gtest.h>

#include "sim/explorer.hpp"
#include "sim/random_runner.hpp"
#include "typesys/zoo.hpp"

namespace rcons::rc {
namespace {

TEST(TournamentTest, StructureMatchesParticipants) {
  auto type = typesys::make_type("Sn(4)");
  const TournamentSystem system = make_rc_tournament(*type, 4, {1, 2, 3, 4});
  EXPECT_EQ(system.processes.size(), 4u);
  EXPECT_EQ(system.instances, 3);  // binary tree over 4 leaves
  EXPECT_GE(system.max_stages, 2);
}

TEST(TournamentTest, SingleParticipantDecidesOwnInput) {
  auto type = typesys::make_type("Sn(3)");
  TournamentSystem system = make_rc_tournament(*type, 3, {77});
  sim::Memory memory = std::move(system.memory);
  const sim::StepResult result = system.processes.front().step(memory);
  ASSERT_EQ(result.kind, sim::StepResult::Kind::kDecided);
  EXPECT_EQ(result.decision, 77);
}

struct TournamentCase {
  std::string type_name;
  int witness_n;
  int participants;
  int crash_budget;
};

class TournamentModelTest : public ::testing::TestWithParam<TournamentCase> {};

TEST_P(TournamentModelTest, ExhaustiveAgreementUnderCrashes) {
  const TournamentCase& c = GetParam();
  auto type = typesys::make_type(c.type_name);
  std::vector<typesys::Value> inputs;
  for (int i = 0; i < c.participants; ++i) inputs.push_back(10 + i);
  TournamentSystem system = make_rc_tournament(*type, c.witness_n, inputs);
  sim::ExplorerConfig config;
  config.crash_budget = c.crash_budget;
  config.valid_outputs = inputs;
  sim::Explorer explorer(std::move(system.memory), std::move(system.processes), config);
  const auto violation = explorer.run();
  EXPECT_FALSE(violation.has_value())
      << violation->description << "\n  trace: " << violation->trace;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TournamentModelTest,
    ::testing::Values(TournamentCase{"Sn(2)", 2, 2, 2},
                      TournamentCase{"Sn(3)", 3, 3, 1},
                      TournamentCase{"Sn(4)", 4, 3, 1},
                      TournamentCase{"compare-and-swap", 3, 3, 1},
                      TournamentCase{"sticky-bit", 2, 2, 2}),
    [](const ::testing::TestParamInfo<TournamentCase>& param_info) {
      std::string name = param_info.param.type_name + "_w" +
                         std::to_string(param_info.param.witness_n) + "_k" +
                         std::to_string(param_info.param.participants) + "_c" +
                         std::to_string(param_info.param.crash_budget);
      for (char& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(TournamentTest, RandomStressSn6) {
  auto type = typesys::make_type("Sn(6)");
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    std::vector<typesys::Value> inputs = {10, 20, 30, 40, 50, 60};
    TournamentSystem system = make_rc_tournament(*type, 6, inputs);
    sim::RandomRunConfig config;
    config.seed = seed;
    config.crash_per_mille = 120;
    config.max_crashes = 15;
    config.valid_outputs = inputs;
    const auto report =
        run_random(std::move(system.memory), std::move(system.processes), config);
    EXPECT_TRUE(report.all_decided) << "seed " << seed;
    EXPECT_FALSE(report.violation.has_value())
        << "seed " << seed << ": " << *report.violation;
  }
}

TEST(TournamentTest, FewerParticipantsThanWitness) {
  // Proposition 30's remark: the n-process team consensus still works when
  // only k < n processes use it.
  auto type = typesys::make_type("Sn(5)");
  TournamentSystem system = make_rc_tournament(*type, 5, {4, 8});
  sim::ExplorerConfig config;
  config.crash_budget = 2;
  config.valid_outputs = {4, 8};
  sim::Explorer explorer(std::move(system.memory), std::move(system.processes), config);
  EXPECT_FALSE(explorer.run().has_value());
}

}  // namespace
}  // namespace rcons::rc
