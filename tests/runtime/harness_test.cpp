#include "runtime/harness.hpp"

#include <gtest/gtest.h>

#include <atomic>

namespace rcons::runtime {
namespace {

TEST(HarnessTest, CollectsOutputsPerRole) {
  const HarnessReport report = run_crashy_workers(
      4, [](int role, CrashInjector&) { return typesys::Value{role * 10}; },
      /*seed=*/1, /*crash_per_mille=*/0, /*max_crashes=*/0);
  ASSERT_EQ(report.outputs.size(), 4u);
  EXPECT_EQ(report.outputs[3], 30);
  EXPECT_FALSE(report.agreement);  // different outputs — harness must notice
  EXPECT_EQ(report.total_crashes, 0);
}

TEST(HarnessTest, AgreementDetectedWhenEqual) {
  const HarnessReport report = run_crashy_workers(
      3, [](int, CrashInjector&) { return typesys::Value{7}; }, 1, 0, 0);
  EXPECT_TRUE(report.agreement);
  EXPECT_TRUE(report.valid_against({7}));
  EXPECT_FALSE(report.valid_against({8}));
}

TEST(HarnessTest, RestartsCrashedWorkers) {
  std::atomic<int> attempts{0};
  const HarnessReport report = run_crashy_workers(
      2,
      [&](int, CrashInjector& crash) {
        attempts.fetch_add(1, std::memory_order_relaxed);  // counted after harness join
        crash.point();  // may throw, forcing a re-run
        return typesys::Value{1};
      },
      /*seed=*/7, /*crash_per_mille=*/700, /*max_crashes=*/3);
  EXPECT_TRUE(report.agreement);
  EXPECT_EQ(report.total_crashes, attempts.load(std::memory_order_relaxed) - 2);  // retries = crashes
  EXPECT_GT(report.total_crashes, 0);
}

}  // namespace
}  // namespace rcons::runtime
