// The real-thread implementations of Figure 2 and the tournament, under
// crash injection (CrashException unwinding + restart = the model's
// crash/recover loop).
#include "runtime/recoverable.hpp"

#include <gtest/gtest.h>

#include "hierarchy/recording.hpp"
#include "runtime/harness.hpp"
#include "typesys/zoo.hpp"

namespace rcons::runtime {
namespace {

std::unique_ptr<RTeamConsensus> make_rteam(const std::string& type_name, int n) {
  std::shared_ptr<const typesys::ObjectType> type = typesys::make_type(type_name);
  auto cache = std::make_shared<typesys::TransitionCache>(type, n);
  auto witness = hierarchy::find_recording_witness(*cache);
  RCONS_ASSERT(witness.has_value());
  auto plan = rc::TeamConsensusPlan::create(cache, *witness);
  auto table = nvram::ClosedTable::build(cache);
  return std::make_unique<RTeamConsensus>(plan, table);
}

TEST(RTeamConsensusTest, SoloDecideReturnsOwnInput) {
  auto tc = make_rteam("Sn(3)", 3);
  CrashInjector none = CrashInjector::none();
  const typesys::Value out = tc->decide(0, 41, none);
  EXPECT_EQ(out, 41);
}

TEST(RTeamConsensusTest, SecondTeamObservesFirstDecision) {
  auto tc = make_rteam("Sn(3)", 3);
  CrashInjector none = CrashInjector::none();
  const typesys::Value first = tc->decide(0, 10, none);
  // Roles 1, 2 are on the other team (one-vs-rest witness); they must agree.
  EXPECT_EQ(tc->decide(1, 20, none), first);
  EXPECT_EQ(tc->decide(2, 20, none), first);
}

TEST(RTeamConsensusTest, RerunAfterDecideIsStable) {
  auto tc = make_rteam("compare-and-swap", 3);
  CrashInjector none = CrashInjector::none();
  const typesys::Value first = tc->decide(0, 33, none);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(tc->decide(0, 33, none), first);  // post-crash re-runs
  }
}

TEST(RTeamConsensusTest, ThreadsAgreeUnderCrashInjection) {
  auto type = typesys::make_type("Sn(4)");
  auto cache = std::make_shared<typesys::TransitionCache>(*type, 4);
  auto witness = hierarchy::find_recording_witness(*cache);
  ASSERT_TRUE(witness.has_value());
  auto plan = rc::TeamConsensusPlan::create(cache, *witness);
  auto table = nvram::ClosedTable::build(cache);

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RTeamConsensus tc(plan, table);
    std::vector<typesys::Value> inputs;
    for (int role = 0; role < plan->n(); ++role) {
      inputs.push_back(plan->team[static_cast<std::size_t>(role)] == 0 ? 111 : 222);
    }
    const HarnessReport report = run_crashy_workers(
        plan->n(),
        [&](int role, CrashInjector& crash) {
          return tc.decide(role, inputs[static_cast<std::size_t>(role)], crash);
        },
        seed, /*crash_per_mille=*/120, /*max_crashes_per_worker=*/6);
    EXPECT_TRUE(report.agreement) << "seed " << seed;
    EXPECT_TRUE(report.valid_against(inputs)) << "seed " << seed;
  }
}

TEST(RTournamentTest, StructureAndSolo) {
  auto type = typesys::make_type("Sn(4)");
  RTournament tournament(*type, 4, 4);
  EXPECT_EQ(tournament.participants(), 4);
  EXPECT_EQ(tournament.instances(), 3);
  EXPECT_GE(tournament.depth(), 2);
  CrashInjector none = CrashInjector::none();
  EXPECT_EQ(tournament.decide(2, 55, none), 55);
}

TEST(RTournamentTest, ThreadsAgreeAcrossSeedsAndCrashRates) {
  auto type = typesys::make_type("Sn(6)");
  RTournament tournament(*type, 6, 6);
  const std::vector<typesys::Value> inputs = {1, 2, 3, 4, 5, 6};
  for (const int crash_per_mille : {0, 100, 400}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      tournament.reset();
      const HarnessReport report = run_crashy_workers(
          6,
          [&](int role, CrashInjector& crash) {
            return tournament.decide(role, inputs[static_cast<std::size_t>(role)],
                                     crash);
          },
          seed, crash_per_mille, /*max_crashes_per_worker=*/8);
      EXPECT_TRUE(report.agreement)
          << "seed " << seed << " crash_rate " << crash_per_mille;
      EXPECT_TRUE(report.valid_against(inputs)) << "seed " << seed;
      if (crash_per_mille == 0) EXPECT_EQ(report.total_crashes, 0);
    }
  }
}

TEST(RRaceConsensusTest, AgreesUnderHeavyCrashes) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    RRaceConsensus race;
    const std::vector<typesys::Value> inputs = {7, 8, 9, 10};
    const HarnessReport report = run_crashy_workers(
        4,
        [&](int role, CrashInjector& crash) {
          return race.decide(inputs[static_cast<std::size_t>(role)], crash);
        },
        seed, /*crash_per_mille=*/500, /*max_crashes_per_worker=*/10);
    EXPECT_TRUE(report.agreement) << "seed " << seed;
    EXPECT_TRUE(report.valid_against(inputs)) << "seed " << seed;
  }
}

TEST(CrashInjectorTest, RespectsBudgetAndDeterminism) {
  CrashInjector a(7, 500, 3);
  int crashes = 0;
  for (int i = 0; i < 1000; ++i) {
    try {
      a.point();
    } catch (const CrashException&) {
      crashes += 1;
    }
  }
  EXPECT_EQ(crashes, 3);
  // Determinism: same seed, same crash positions.
  CrashInjector b1(99, 200, 100);
  CrashInjector b2(99, 200, 100);
  for (int i = 0; i < 200; ++i) {
    bool c1 = false, c2 = false;
    try {
      b1.point();
    } catch (const CrashException&) {
      c1 = true;
    }
    try {
      b2.point();
    } catch (const CrashException&) {
      c2 = true;
    }
    EXPECT_EQ(c1, c2) << "at point " << i;
  }
}

}  // namespace
}  // namespace rcons::runtime
