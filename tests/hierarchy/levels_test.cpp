// Zoo-wide sweep: the checkers must reproduce every expected hierarchy level
// recorded in the zoo (sourced from the paper and the classic literature).
#include "hierarchy/levels.hpp"

#include <gtest/gtest.h>

#include "typesys/zoo.hpp"

namespace rcons::hierarchy {
namespace {

constexpr int kCap = 6;

struct ZooCase {
  std::string name;
  int expected_discerning;
  int expected_recording;
};

std::vector<ZooCase> zoo_cases() {
  std::vector<ZooCase> cases;
  for (const typesys::ZooEntry& entry : typesys::make_zoo(5)) {
    cases.push_back(
        {entry.type->name(), entry.expected_max_discerning, entry.expected_max_recording});
  }
  return cases;
}

class ZooLevelsTest : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooLevelsTest, DiscerningLevelMatchesLiterature) {
  const ZooCase& c = GetParam();
  auto type = typesys::make_type(c.name);
  ASSERT_NE(type, nullptr);
  const Level level = max_discerning_level(*type, kCap);
  if (c.expected_discerning == typesys::kUnbounded) {
    EXPECT_TRUE(level.capped) << c.name << " got " << level.format();
  } else {
    EXPECT_FALSE(level.capped) << c.name;
    EXPECT_EQ(level.level, c.expected_discerning) << c.name;
  }
}

TEST_P(ZooLevelsTest, RecordingLevelMatchesPaper) {
  const ZooCase& c = GetParam();
  auto type = typesys::make_type(c.name);
  ASSERT_NE(type, nullptr);
  const Level level = max_recording_level(*type, kCap);
  if (c.expected_recording == typesys::kUnbounded) {
    EXPECT_TRUE(level.capped) << c.name << " got " << level.format();
  } else {
    EXPECT_FALSE(level.capped) << c.name;
    EXPECT_EQ(level.level, c.expected_recording) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, ZooLevelsTest, ::testing::ValuesIn(zoo_cases()),
                         [](const ::testing::TestParamInfo<ZooCase>& param_info) {
                           std::string name = param_info.param.name;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(BoundsTest, ReadableBoundsFollowTheorems) {
  // Tn(5): cons = 5, recording level 3 ⇒ rcons ∈ [3, 4] — strictly below
  // cons (Corollary 20).
  auto tn = typesys::make_type("Tn(5)");
  const HierarchyBounds b = bounds_for_readable(max_discerning_level(*tn, 6),
                                                max_recording_level(*tn, 6));
  EXPECT_EQ(b.cons, 5);
  EXPECT_EQ(b.rcons_lo, 3);
  EXPECT_EQ(b.rcons_hi, 4);
  EXPECT_LT(b.rcons_hi, b.cons);
}

TEST(BoundsTest, SnBoundsCollapse) {
  // Sn(4): recording level 4 = discerning level 4 ⇒ rcons = cons = 4
  // (Proposition 21).
  auto sn = typesys::make_type("Sn(4)");
  const HierarchyBounds b = bounds_for_readable(max_discerning_level(*sn, 6),
                                                max_recording_level(*sn, 6));
  EXPECT_EQ(b.cons, 4);
  EXPECT_EQ(b.rcons_lo, 4);
  EXPECT_EQ(b.rcons_hi, 4);
}

TEST(BoundsTest, CorollarySeventeenHoldsAcrossZoo) {
  // cons(T) - 2 ≤ rcons(T) ≤ cons(T) for every readable zoo type with finite
  // levels: equivalently recording level ≥ discerning level - 2.
  for (const typesys::ZooEntry& entry : typesys::make_zoo(5)) {
    if (!entry.type->readable()) continue;
    const Level disc = max_discerning_level(*entry.type, kCap);
    const Level rec = max_recording_level(*entry.type, kCap);
    if (disc.capped) continue;
    EXPECT_GE(rec.level, disc.level - 2) << entry.type->name();
    EXPECT_LE(rec.level, disc.level) << entry.type->name();
  }
}

TEST(LevelFormatTest, Formats) {
  EXPECT_EQ((Level{3, false}).format(), "3");
  EXPECT_EQ((Level{6, true}).format(), ">=6");
}

}  // namespace
}  // namespace rcons::hierarchy
