#include "hierarchy/recording.hpp"

#include <gtest/gtest.h>

#include "hierarchy/qsets.hpp"
#include "typesys/types/sn.hpp"
#include "typesys/zoo.hpp"

namespace rcons::hierarchy {
namespace {

TEST(RecordingTest, RegisterIsNot2Recording) {
  EXPECT_FALSE(is_recording(*typesys::make_type("register"), 2));
}

TEST(RecordingTest, TestAndSetIsNot2Recording) {
  // The state after any update is {1}: the identity of the first updater is
  // not recorded. (With Theorem 14 this caps rcons(TAS) ≤ 2 despite
  // cons(TAS) = 2.)
  EXPECT_FALSE(is_recording(*typesys::make_type("test-and-set"), 2));
}

TEST(RecordingTest, SwapAndFaiAreNot2Recording) {
  EXPECT_FALSE(is_recording(*typesys::make_type("swap"), 2));
  EXPECT_FALSE(is_recording(*typesys::make_type("fetch-and-increment"), 2));
}

TEST(RecordingTest, CasAndStickyRecordForLargeN) {
  for (int n = 2; n <= 8; ++n) {
    EXPECT_TRUE(is_recording(*typesys::make_type("compare-and-swap"), n)) << n;
    EXPECT_TRUE(is_recording(*typesys::make_type("sticky-bit"), n)) << n;
  }
}

TEST(RecordingTest, SnIsNRecordingButNotNPlus1) {
  // Proposition 21 (first half).
  for (int n = 2; n <= 6; ++n) {
    auto sn = typesys::make_type("Sn(" + std::to_string(n) + ")");
    EXPECT_TRUE(is_recording(*sn, n)) << n;
    EXPECT_FALSE(is_recording(*sn, n + 1)) << n;
  }
}

TEST(RecordingTest, TnIsNotNMinus1Recording) {
  // Proposition 19 (second half): the separation T_n witnesses.
  for (int n = 4; n <= 7; ++n) {
    auto tn = typesys::make_type("Tn(" + std::to_string(n) + ")");
    EXPECT_FALSE(is_recording(*tn, n - 1)) << n;
  }
}

TEST(RecordingTest, TnIsNMinus2Recording) {
  // Theorem 16's guarantee realized concretely.
  for (int n = 4; n <= 7; ++n) {
    auto tn = typesys::make_type("Tn(" + std::to_string(n) + ")");
    EXPECT_TRUE(is_recording(*tn, n - 2)) << n;
  }
}

TEST(RecordingTest, BareStackAndQueueAreRecording) {
  // The bare machines record push order in the state — but only the readable
  // variants can use Theorem 8 (Appendix H: rcons(standard stack) = 1).
  for (int n = 2; n <= 6; ++n) {
    EXPECT_TRUE(is_recording(*typesys::make_type("stack"), n)) << n;
    EXPECT_TRUE(is_recording(*typesys::make_type("queue"), n)) << n;
  }
}

TEST(RecordingTest, WitnessExpandsConsistently) {
  const int n = 4;
  auto sn = typesys::make_type("Sn(4)");
  typesys::TransitionCache cache(*sn, n);
  const auto witness = find_recording_witness(cache);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->n, n);
  EXPECT_EQ(witness->team.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(witness->ops.size(), static_cast<std::size_t>(n));
  // Q sets must be disjoint (condition 1) and consistent with the teams.
  for (const typesys::StateId q : witness->q_a) {
    EXPECT_FALSE(witness->q_b.contains(q));
  }
  // Conditions 2 and 3 as found.
  const bool q0_in_a = witness->q_a.contains(witness->q0);
  const bool q0_in_b = witness->q_b.contains(witness->q0);
  int team_size[2] = {0, 0};
  for (const int t : witness->team) team_size[t] += 1;
  EXPECT_TRUE(!q0_in_a || team_size[kTeamB] == 1);
  EXPECT_TRUE(!q0_in_b || team_size[kTeamA] == 1);
}

TEST(RecordingTest, CheckSpecificSnWitness) {
  // Verify the paper's exact witness for S_n rather than just any witness.
  const int n = 5;
  typesys::SnType sn(n);
  typesys::TransitionCache cache(sn, n);
  const typesys::StateId q0 = cache.intern({typesys::SnType::kWinnerB, 0});
  Assignment assignment;
  assignment.classes.push_back({kTeamA, /*opA=*/0, 1});
  assignment.classes.push_back({kTeamB, /*opB=*/1, n - 1});
  assignment.team_size[0] = 1;
  assignment.team_size[1] = n - 1;
  EXPECT_TRUE(check_recording_assignment(cache, q0, assignment));
}

TEST(RecordingTest, SnWrongInitialStateFails) {
  // From (A, 0) the roles collapse; the paper's witness conditions fail.
  const int n = 3;
  typesys::SnType sn(n);
  typesys::TransitionCache cache(sn, n);
  const typesys::StateId bad_q0 = cache.intern({typesys::SnType::kWinnerA, 1});
  Assignment assignment;
  assignment.classes.push_back({kTeamA, 0, 1});
  assignment.classes.push_back({kTeamB, 1, n - 1});
  assignment.team_size[0] = 1;
  assignment.team_size[1] = n - 1;
  EXPECT_FALSE(check_recording_assignment(cache, bad_q0, assignment));
}

}  // namespace
}  // namespace rcons::hierarchy
