#include "hierarchy/assignment.hpp"

#include <gtest/gtest.h>

#include "typesys/types/rmw.hpp"

namespace rcons::hierarchy {
namespace {

long count_assignments(int n, int num_ops) {
  long count = 0;
  for_each_assignment(n, num_ops, [&](const Assignment&) {
    count += 1;
    return false;
  });
  return count;
}

TEST(AssignmentTest, EnumerationCountsMatchStarsAndBars) {
  // Compositions of n into 2k cells, minus those leaving a team empty:
  // C(n+2k-1, 2k-1) - 2*C(n+k-1, k-1).
  EXPECT_EQ(count_assignments(2, 1), 1);   // 1A+1B only
  EXPECT_EQ(count_assignments(3, 1), 2);   // 1+2, 2+1
  EXPECT_EQ(count_assignments(2, 2), 4);   // C(5,3)=10 minus 2*C(3,1)=6
  EXPECT_EQ(count_assignments(3, 2), 12);  // C(6,3)=20 minus 2*C(4,1)=8
}

TEST(AssignmentTest, AllAssignmentsHaveNonEmptyTeams) {
  for_each_assignment(4, 2, [](const Assignment& a) {
    EXPECT_GE(a.team_size[0], 1);
    EXPECT_GE(a.team_size[1], 1);
    EXPECT_EQ(a.num_processes(), 4);
    return false;
  });
}

TEST(AssignmentTest, ExpandProducesPerProcessArrays) {
  Assignment a;
  a.classes.push_back({kTeamA, 0, 2});
  a.classes.push_back({kTeamB, 1, 1});
  a.team_size[0] = 2;
  a.team_size[1] = 1;
  std::vector<int> team;
  std::vector<typesys::OpId> ops;
  a.expand(team, ops);
  EXPECT_EQ(team, (std::vector<int>{kTeamA, kTeamA, kTeamB}));
  EXPECT_EQ(ops, (std::vector<typesys::OpId>{0, 0, 1}));
}

TEST(AssignmentTest, EarlyExitStopsEnumeration) {
  int visits = 0;
  const bool found = for_each_assignment(4, 2, [&](const Assignment&) {
    visits += 1;
    return visits == 3;
  });
  EXPECT_TRUE(found);
  EXPECT_EQ(visits, 3);
}

TEST(AssignmentTest, LikelyShapesAreValidAssignments) {
  int visits = 0;
  for_each_likely_assignment(5, 3, [&](const Assignment& a) {
    EXPECT_EQ(a.num_processes(), 5);
    EXPECT_GE(a.team_size[0], 1);
    EXPECT_GE(a.team_size[1], 1);
    visits += 1;
    return false;
  });
  EXPECT_GT(visits, 0);
}

TEST(AssignmentTest, FormatNamesOps) {
  typesys::TestAndSetType tas;
  typesys::TransitionCache cache(tas, 2);
  Assignment a;
  a.classes.push_back({kTeamA, 0, 1});
  a.classes.push_back({kTeamB, 0, 1});
  a.team_size[0] = a.team_size[1] = 1;
  EXPECT_EQ(a.format(cache), "A:{1xTestAndSet} B:{1xTestAndSet}");
}

}  // namespace
}  // namespace rcons::hierarchy
