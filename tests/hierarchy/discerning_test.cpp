#include "hierarchy/discerning.hpp"

#include <gtest/gtest.h>

#include "typesys/zoo.hpp"

namespace rcons::hierarchy {
namespace {

TEST(DiscerningTest, RegisterIsNot2Discerning) {
  EXPECT_FALSE(is_discerning(*typesys::make_type("register"), 2));
}

TEST(DiscerningTest, TestAndSetIs2Not3Discerning) {
  auto tas = typesys::make_type("test-and-set");
  EXPECT_TRUE(is_discerning(*tas, 2));
  EXPECT_FALSE(is_discerning(*tas, 3));
}

TEST(DiscerningTest, FetchAndIncrementIs2Not3Discerning) {
  auto fai = typesys::make_type("fetch-and-increment");
  EXPECT_TRUE(is_discerning(*fai, 2));
  EXPECT_FALSE(is_discerning(*fai, 3));
}

TEST(DiscerningTest, SwapIs2Not3Discerning) {
  auto swap = typesys::make_type("swap");
  EXPECT_TRUE(is_discerning(*swap, 2));
  EXPECT_FALSE(is_discerning(*swap, 3));
}

TEST(DiscerningTest, CasIsDiscerningForLargeN) {
  auto cas = typesys::make_type("compare-and-swap");
  for (int n = 2; n <= 8; ++n) EXPECT_TRUE(is_discerning(*cas, n)) << n;
}

TEST(DiscerningTest, TnIsNDiscerningButNotNPlus1) {
  // Proposition 19 (first half) and Corollary 20: cons(T_n) = n.
  for (int n = 4; n <= 7; ++n) {
    auto tn = typesys::make_type("Tn(" + std::to_string(n) + ")");
    EXPECT_TRUE(is_discerning(*tn, n)) << n;
    EXPECT_FALSE(is_discerning(*tn, n + 1)) << n;
  }
}

TEST(DiscerningTest, SnIsNDiscerningButNotNPlus1) {
  // Proposition 21 (second half): cons(S_n) ≤ n, and n-recording implies
  // n-discerning (Observation 5) so cons(S_n) = n.
  for (int n = 2; n <= 6; ++n) {
    auto sn = typesys::make_type("Sn(" + std::to_string(n) + ")");
    EXPECT_TRUE(is_discerning(*sn, n)) << n;
    EXPECT_FALSE(is_discerning(*sn, n + 1)) << n;
  }
}

TEST(DiscerningTest, WitnessHasNonEmptyTeams) {
  auto tas = typesys::make_type("test-and-set");
  typesys::TransitionCache cache(*tas, 2);
  const auto witness = find_discerning_witness(cache);
  ASSERT_TRUE(witness.has_value());
  EXPECT_GE(witness->assignment.team_size[0], 1);
  EXPECT_GE(witness->assignment.team_size[1], 1);
  EXPECT_EQ(witness->assignment.num_processes(), 2);
  EXPECT_FALSE(witness->format(cache).empty());
}

TEST(DiscerningTest, TnWitnessUsesBalancedTeams) {
  // The paper's T_n witness splits teams ⌊n/2⌋ / ⌈n/2⌉; verify the found
  // witness satisfies the definition with exactly balanced sizes (any valid
  // witness must, by the counting argument in Appendix D).
  const int n = 6;
  auto tn = typesys::make_type("Tn(6)");
  typesys::TransitionCache cache(*tn, n);
  const auto witness = find_discerning_witness(cache);
  ASSERT_TRUE(witness.has_value());
  const int a = witness->assignment.team_size[0];
  const int b = witness->assignment.team_size[1];
  EXPECT_EQ(a + b, n);
  EXPECT_EQ(std::min(a, b), n / 2);
}

}  // namespace
}  // namespace rcons::hierarchy
