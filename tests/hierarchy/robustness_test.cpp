// Theorem 22 probes: a set of readable types used together solves RC for at
// most max individual level + 1. We test the product-object proxy: the
// recording level of T1×T2 (one object of each type fused, operations acting
// componentwise) never exceeds max(level(T1), level(T2)) + 1.
#include "hierarchy/product.hpp"

#include <gtest/gtest.h>

#include "hierarchy/levels.hpp"
#include "typesys/zoo.hpp"

namespace rcons::hierarchy {
namespace {

struct PairCase {
  std::string first;
  std::string second;
};

std::vector<PairCase> pairs() {
  return {
      {"test-and-set", "test-and-set"},
      {"test-and-set", "register"},
      {"swap", "fetch-and-increment"},
      {"register", "register"},
      {"test-and-set", "Sn(3)"},
      {"Sn(3)", "Sn(3)"},
  };
}

class ProductRobustnessTest : public ::testing::TestWithParam<PairCase> {};

TEST_P(ProductRobustnessTest, RecordingGainsAtMostOneLevel) {
  auto t1 = typesys::make_type(GetParam().first);
  auto t2 = typesys::make_type(GetParam().second);
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  const Level l1 = max_recording_level(*t1, 5);
  const Level l2 = max_recording_level(*t2, 5);
  ASSERT_FALSE(l1.capped);
  ASSERT_FALSE(l2.capped);
  ProductType product(typesys::make_type(GetParam().first),
                      typesys::make_type(GetParam().second));
  const Level lp = max_recording_level(product, 5);
  ASSERT_FALSE(lp.capped);
  EXPECT_LE(lp.level, std::max(l1.level, l2.level) + 1)
      << GetParam().first << " x " << GetParam().second;
  // And combining can never hurt.
  EXPECT_GE(lp.level, std::max(l1.level, l2.level));
}

TEST_P(ProductRobustnessTest, DiscerningRobustAcrossPairs) {
  // Ruppert's robustness for readable types: cons(T1×T2) = max(cons).
  auto t1 = typesys::make_type(GetParam().first);
  auto t2 = typesys::make_type(GetParam().second);
  const Level l1 = max_discerning_level(*t1, 5);
  const Level l2 = max_discerning_level(*t2, 5);
  ASSERT_FALSE(l1.capped);
  ASSERT_FALSE(l2.capped);
  ProductType product(typesys::make_type(GetParam().first),
                      typesys::make_type(GetParam().second));
  const Level lp = max_discerning_level(product, 5);
  ASSERT_FALSE(lp.capped);
  EXPECT_EQ(lp.level, std::max(l1.level, l2.level))
      << GetParam().first << " x " << GetParam().second;
}

INSTANTIATE_TEST_SUITE_P(Pairs, ProductRobustnessTest, ::testing::ValuesIn(pairs()),
                         [](const ::testing::TestParamInfo<PairCase>& param_info) {
                           std::string name = param_info.param.first + "_x_" + param_info.param.second;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(ProductTypeTest, ComponentsEvolveIndependently) {
  ProductType product(typesys::make_type("test-and-set"), typesys::make_type("register"));
  const auto ops = product.operations(2);
  // TAS ops first, then register writes, suffixed by component.
  ASSERT_GE(ops.size(), 3u);
  EXPECT_EQ(ops[0].name, "TestAndSet@1");
  const auto initial = product.initial_states(2);
  ASSERT_FALSE(initial.empty());
  const auto after = product.apply(initial.front(), ops[0]);
  // Applying the TAS op must not disturb the register component.
  const auto again = product.apply(after.next, ops[0]);
  EXPECT_EQ(again.response, 1);  // TAS already set
}

}  // namespace
}  // namespace rcons::hierarchy
