// Cross-validates the optimized class-DP checkers against literal
// transcriptions of Definitions 2 and 4 (per-process bitmask enumeration),
// over every assignment of small instances. This is the property-based
// safety net for the checker optimizations (class symmetry, memoization).
#include "hierarchy/brute.hpp"

#include <gtest/gtest.h>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "typesys/zoo.hpp"

namespace rcons::hierarchy {
namespace {

struct CrossCase {
  std::string type_name;
  int n;
};

std::vector<CrossCase> cases() {
  return {
      {"register", 2},     {"register", 3},      {"test-and-set", 2},
      {"test-and-set", 3}, {"swap", 2},          {"fetch-and-increment", 3},
      {"compare-and-swap", 3}, {"sticky-bit", 3}, {"consensus-object", 2},
      {"stack", 2},        {"stack", 3},         {"queue", 3},
      {"Sn(2)", 2},        {"Sn(3)", 3},         {"Sn(3)", 4},
      {"Sn(4)", 4},        {"Tn(4)", 3},         {"Tn(4)", 4},
      {"Tn(5)", 4},        {"max-register", 2},
  };
}

class BruteCrossCheckTest : public ::testing::TestWithParam<CrossCase> {};

TEST_P(BruteCrossCheckTest, RecordingAgreesOnEveryAssignment) {
  auto type = typesys::make_type(GetParam().type_name);
  ASSERT_NE(type, nullptr);
  const int n = GetParam().n;
  typesys::TransitionCache cache(*type, n);
  long checked = 0;
  for (const typesys::StateId q0 : cache.initial_states()) {
    for_each_assignment(n, cache.num_ops(), [&](const Assignment& assignment) {
      std::vector<int> team;
      std::vector<typesys::OpId> ops;
      assignment.expand(team, ops);
      const bool fast = check_recording_assignment(cache, q0, assignment);
      const bool brute = brute_check_recording(cache, q0, team, ops);
      EXPECT_EQ(fast, brute) << GetParam().type_name << " n=" << n << " q0=" << q0
                             << " " << assignment.format(cache);
      checked += 1;
      return false;  // keep enumerating
    });
  }
  EXPECT_GT(checked, 0);
}

TEST_P(BruteCrossCheckTest, DiscerningAgreesOnEveryAssignment) {
  auto type = typesys::make_type(GetParam().type_name);
  ASSERT_NE(type, nullptr);
  const int n = GetParam().n;
  typesys::TransitionCache cache(*type, n);
  for (const typesys::StateId q0 : cache.initial_states()) {
    for_each_assignment(n, cache.num_ops(), [&](const Assignment& assignment) {
      std::vector<int> team;
      std::vector<typesys::OpId> ops;
      assignment.expand(team, ops);
      const bool fast = check_discerning_assignment(cache, q0, assignment);
      const bool brute = brute_check_discerning(cache, q0, team, ops);
      EXPECT_EQ(fast, brute) << GetParam().type_name << " n=" << n << " q0=" << q0
                             << " " << assignment.format(cache);
      return false;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, BruteCrossCheckTest, ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<CrossCase>& param_info) {
                           std::string name = param_info.param.type_name + "_n" +
                                              std::to_string(param_info.param.n);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace rcons::hierarchy
