// Machine-checks every implication edge of Figure 1 over the whole type zoo
// and all feasible n — the repository's E1 experiment.
//
//   n-recording ⇒ n-discerning                 (Observation 5)
//   n-recording ⇒ (n-1)-recording, n ≥ 3       (Observation 6)
//   n-discerning ⇒ (n-1)-discerning, n ≥ 3     (folklore analogue)
//   n-discerning ⇒ (n-2)-recording, n ≥ 4      (Theorem 16)
//   3-discerning ⇒ 2-recording                 (Proposition 18)
#include <gtest/gtest.h>

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "typesys/zoo.hpp"

namespace rcons::hierarchy {
namespace {

struct GridCase {
  std::string type_name;
  int n;
};

std::vector<GridCase> grid() {
  std::vector<GridCase> cases;
  for (const typesys::ZooEntry& entry : typesys::make_zoo(5)) {
    for (int n = 2; n <= 6; ++n) {
      cases.push_back({entry.type->name(), n});
    }
  }
  return cases;
}

class Figure1Test : public ::testing::TestWithParam<GridCase> {
 protected:
  std::unique_ptr<typesys::ObjectType> type_ = typesys::make_type(GetParam().type_name);
};

TEST_P(Figure1Test, Observation5RecordingImpliesDiscerning) {
  const int n = GetParam().n;
  if (is_recording(*type_, n)) {
    EXPECT_TRUE(is_discerning(*type_, n)) << GetParam().type_name << " n=" << n;
  }
}

TEST_P(Figure1Test, Observation6RecordingIsDownwardClosed) {
  const int n = GetParam().n;
  if (n >= 3 && is_recording(*type_, n)) {
    EXPECT_TRUE(is_recording(*type_, n - 1)) << GetParam().type_name << " n=" << n;
  }
}

TEST_P(Figure1Test, DiscerningIsDownwardClosed) {
  const int n = GetParam().n;
  if (n >= 3 && is_discerning(*type_, n)) {
    EXPECT_TRUE(is_discerning(*type_, n - 1)) << GetParam().type_name << " n=" << n;
  }
}

TEST_P(Figure1Test, Theorem16DiscerningImpliesRecordingTwoBelow) {
  const int n = GetParam().n;
  if (n >= 4 && is_discerning(*type_, n)) {
    EXPECT_TRUE(is_recording(*type_, n - 2)) << GetParam().type_name << " n=" << n;
  }
}

TEST_P(Figure1Test, Proposition18ThreeDiscerningImpliesTwoRecording) {
  if (GetParam().n != 3) GTEST_SKIP();
  if (is_discerning(*type_, 3)) {
    EXPECT_TRUE(is_recording(*type_, 2)) << GetParam().type_name;
  }
}

INSTANTIATE_TEST_SUITE_P(ZooGrid, Figure1Test, ::testing::ValuesIn(grid()),
                         [](const ::testing::TestParamInfo<GridCase>& param_info) {
                           std::string name =
                               param_info.param.type_name + "_n" + std::to_string(param_info.param.n);
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(Figure1SeparationsTest, TnSeparatesTheHierarchies) {
  // The gap edges of Figure 1 are strict: T_n is n-discerning yet not
  // (n-1)-recording, so "n-discerning ⇒ (n-2)-recording" cannot be improved
  // (Proposition 19).
  for (int n = 4; n <= 7; ++n) {
    auto tn = typesys::make_type("Tn(" + std::to_string(n) + ")");
    EXPECT_TRUE(is_discerning(*tn, n));
    EXPECT_FALSE(is_recording(*tn, n - 1));
    EXPECT_TRUE(is_recording(*tn, n - 2));
  }
}

}  // namespace
}  // namespace rcons::hierarchy
