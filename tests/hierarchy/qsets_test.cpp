// Hand-computed Q_X and R_{X,j} sets for concrete witnesses, checked against
// the optimized class-DP computation.
#include "hierarchy/qsets.hpp"

#include <gtest/gtest.h>

#include "typesys/types/register.hpp"
#include "typesys/types/rmw.hpp"
#include "typesys/types/sn.hpp"

namespace rcons::hierarchy {
namespace {

using typesys::kBottom;
using typesys::StateId;
using typesys::TransitionCache;

Assignment one_vs_rest(int op_a, int op_b, int n) {
  Assignment a;
  a.classes.push_back({kTeamA, op_a, 1});
  a.classes.push_back({kTeamB, op_b, n - 1});
  a.team_size[0] = 1;
  a.team_size[1] = n - 1;
  return a;
}

TEST(QSetTest, SnWitnessSetsMatchPaper) {
  // Proposition 21's witness: q0 = (B,0), A = {p1} with opA, B = rest with
  // opB. Then Q_A = {(A, r)} for r = 0..n-1 and Q_B = {(B, r)} for all r.
  const int n = 4;
  typesys::SnType sn(n);
  TransitionCache cache(sn, n);
  const StateId q0 = cache.intern({typesys::SnType::kWinnerB, 0});
  const Assignment assignment = one_vs_rest(/*opA=*/0, /*opB=*/1, n);

  const auto q_a = q_set(cache, q0, assignment, kTeamA);
  const auto q_b = q_set(cache, q0, assignment, kTeamB);

  EXPECT_EQ(q_a.size(), static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    EXPECT_TRUE(q_a.contains(cache.intern({typesys::SnType::kWinnerA, r}))) << r;
  }
  // Q_B contains (B, r) for every row reachable by ≤ n-1 opB's plus the
  // opA-reset path — including q0 itself (which is why condition 3 needs
  // |A| = 1 for this witness).
  EXPECT_TRUE(q_b.contains(q0));
  for (const StateId q : q_a) EXPECT_FALSE(q_b.contains(q));
}

TEST(QSetTest, RegisterQSetsOverlap) {
  // Writes overwrite: both teams can drive the register to the same state.
  typesys::RegisterType reg;
  TransitionCache cache(reg, 2);
  const StateId q0 = cache.intern({kBottom});
  const Assignment assignment = one_vs_rest(0, 1, 2);
  const auto q_a = q_set(cache, q0, assignment, kTeamA);
  const auto q_b = q_set(cache, q0, assignment, kTeamB);
  bool overlap = false;
  for (const StateId q : q_a) overlap = overlap || q_b.contains(q);
  EXPECT_TRUE(overlap);
}

TEST(QSetTest, CasQSetsDisjoint) {
  typesys::CompareAndSwapType cas;
  TransitionCache cache(cas, 3);
  const StateId q0 = cache.intern({kBottom});
  Assignment assignment;
  assignment.classes.push_back({kTeamA, 0, 1});  // CAS(⊥,1)
  assignment.classes.push_back({kTeamB, 1, 1});  // CAS(⊥,2)
  assignment.classes.push_back({kTeamB, 2, 1});  // CAS(⊥,3)
  assignment.team_size[0] = 1;
  assignment.team_size[1] = 2;
  const auto q_a = q_set(cache, q0, assignment, kTeamA);
  const auto q_b = q_set(cache, q0, assignment, kTeamB);
  EXPECT_EQ(q_a.size(), 1u);  // only state {1}
  EXPECT_EQ(q_b.size(), 2u);  // states {2}, {3}
  for (const StateId q : q_a) EXPECT_FALSE(q_b.contains(q));
  EXPECT_FALSE(q_a.contains(q0));
  EXPECT_FALSE(q_b.contains(q0));
}

TEST(RSetTest, TestAndSetResponsesDiscern) {
  // For TAS with q0 = 0: R_{A,1} pairs have response 0 (p1 first) while
  // R_{B,1} pairs have response 1 (p2 went first) — disjoint, hence
  // 2-discerning.
  typesys::TestAndSetType tas;
  TransitionCache cache(tas, 2);
  const StateId q0 = cache.intern({0});
  Assignment assignment = one_vs_rest(0, 0, 2);
  ResponseIntern responses;
  const auto r_a = r_set(cache, q0, assignment, /*cls=*/0, kTeamA, responses);
  const auto r_b = r_set(cache, q0, assignment, /*cls=*/0, kTeamB, responses);
  EXPECT_FALSE(r_a.empty());
  EXPECT_FALSE(r_b.empty());
  for (const RPair pair : r_a) EXPECT_FALSE(r_b.contains(pair));
}

TEST(RSetTest, PairsVariantDecodesResponses) {
  typesys::TestAndSetType tas;
  TransitionCache cache(tas, 2);
  const StateId q0 = cache.intern({0});
  Assignment assignment = one_vs_rest(0, 0, 2);
  const RespStateSet r_a = r_set_pairs(cache, q0, assignment, 0, kTeamA);
  const StateId set_state = cache.intern({1});
  // p1 first: responds 0; object ends set regardless of p2's participation.
  EXPECT_TRUE(r_a.contains(RespState{0, set_state}));
  EXPECT_FALSE(r_a.contains(RespState{1, set_state}));
}

TEST(RSetTest, FirstMoverTeamConstraintRespected) {
  // With team A = {p1} assigned Stick(0), any R_{A,*} pair must stem from
  // Stick(0) first: every reachable state from then on stores 0.
  typesys::StickyBitType sticky;
  TransitionCache cache(sticky, 2);
  const StateId q0 = cache.intern({kBottom});
  Assignment assignment = one_vs_rest(/*Stick(0)=*/0, /*Stick(1)=*/1, 2);
  const RespStateSet r_a = r_set_pairs(cache, q0, assignment, 0, kTeamA);
  const StateId zero = cache.intern({0});
  for (const RespState& pair : r_a) {
    EXPECT_EQ(pair.state, zero);
    EXPECT_EQ(pair.response, 0);
  }
}

}  // namespace
}  // namespace rcons::hierarchy
