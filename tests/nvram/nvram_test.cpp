#include "nvram/nvram.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "typesys/types/rmw.hpp"
#include "typesys/zoo.hpp"

namespace rcons::nvram {
namespace {

TEST(NvRegisterTest, ReadWriteCas) {
  NvRegister reg(typesys::kBottom);
  EXPECT_EQ(reg.read(), typesys::kBottom);
  reg.write(5);
  EXPECT_EQ(reg.read(), 5);
  EXPECT_EQ(reg.compare_and_swap(5, 7), 5);  // success returns expected
  EXPECT_EQ(reg.read(), 7);
  EXPECT_EQ(reg.compare_and_swap(5, 9), 7);  // failure returns current
  EXPECT_EQ(reg.read(), 7);
}

TEST(NvObjectTest, AppliesSequentialSpec) {
  auto tas = typesys::make_type("test-and-set");
  auto cache = std::make_shared<typesys::TransitionCache>(*tas, 2);
  const typesys::StateId q0 = cache->intern({0});
  NvObject object(ClosedTable::build(cache), q0);
  EXPECT_EQ(object.apply(0), 0);
  EXPECT_EQ(object.apply(0), 1);
  object.reset(q0);
  EXPECT_EQ(object.apply(0), 0);
}

TEST(NvObjectTest, ConcurrentFetchAndIncrementIsLinearizable) {
  // k threads × m F&I ops: every response 0..k*m-1 must appear exactly once —
  // the CAS-loop object is an atomic RMW. The modulus bounds the closure
  // above the number of increments, so no wrap occurs during the test.
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 250;
  typesys::FetchAndIncrementType fai(kThreads * kOpsPerThread + 1);
  auto cache = std::make_shared<typesys::TransitionCache>(fai, 2);
  const typesys::StateId q0 = cache->intern({0});
  NvObject object(ClosedTable::build(cache, /*max_states=*/2000), q0);

  std::vector<std::vector<typesys::Value>> responses(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        responses[static_cast<std::size_t>(t)].push_back(object.apply(0));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<bool> seen(kThreads * kOpsPerThread, false);
  for (const auto& per_thread : responses) {
    typesys::Value last = -1;
    for (const typesys::Value response : per_thread) {
      ASSERT_GE(response, 0);
      ASSERT_LT(response, kThreads * kOpsPerThread);
      EXPECT_FALSE(seen[static_cast<std::size_t>(response)]) << "duplicate response";
      seen[static_cast<std::size_t>(response)] = true;
      EXPECT_GT(response, last) << "per-thread responses must be monotone";
      last = response;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "missing response " << i;
  }
}

TEST(PersistenceModelTest, ZeroDelayIsFree) {
  PersistenceModel model;
  model.on_persist();  // must not hang
  SUCCEED();
}

TEST(PersistenceModelTest, DelaySlowsWrites) {
  PersistenceModel slow{200'000};  // 0.2 ms per persist
  NvRegister reg(0, &slow);
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 10; ++i) reg.write(i);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count(),
            1500);
}

}  // namespace
}  // namespace rcons::nvram
