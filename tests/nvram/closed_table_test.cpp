#include "nvram/closed_table.hpp"

#include <gtest/gtest.h>

#include "typesys/zoo.hpp"

namespace rcons::nvram {
namespace {

TEST(ClosedTableTest, TasClosureHasTwoStates) {
  auto tas = typesys::make_type("test-and-set");
  auto cache = std::make_shared<typesys::TransitionCache>(*tas, 2);
  auto table = ClosedTable::build(cache);
  EXPECT_EQ(table->num_states(), 2u);
  EXPECT_EQ(table->num_ops(), 1);
}

TEST(ClosedTableTest, MatchesCacheTransitions) {
  auto sn = typesys::make_type("Sn(4)");
  auto cache = std::make_shared<typesys::TransitionCache>(*sn, 4);
  auto table = ClosedTable::build(cache);
  for (std::size_t s = 0; s < table->num_states(); ++s) {
    for (typesys::OpId op = 0; op < table->num_ops(); ++op) {
      const auto expected = cache->apply(static_cast<typesys::StateId>(s), op);
      const ClosedTable::Entry entry = table->apply(static_cast<typesys::StateId>(s), op);
      EXPECT_EQ(entry.next, expected.next);
      EXPECT_EQ(entry.response, expected.response);
    }
  }
}

TEST(ClosedTableTest, SnClosureIsFullStateSpace) {
  auto sn = typesys::make_type("Sn(5)");
  auto cache = std::make_shared<typesys::TransitionCache>(*sn, 5);
  auto table = ClosedTable::build(cache);
  EXPECT_EQ(table->num_states(), 10u);  // 2n states, all reachable
}

TEST(ClosedTableTest, CounterClosureIsBoundedByCap) {
  // An unbounded counter would blow past the cap; the builder must detect it.
  auto counter = typesys::make_type("counter");
  auto cache = std::make_shared<typesys::TransitionCache>(*counter, 2);
  EXPECT_DEATH((void)ClosedTable::build(cache, /*max_states=*/50),
               "transition closure exceeds max_states");
}

TEST(ClosedTableTest, SharesStateIdsWithCache) {
  // Q_A-style sets computed on the cache must stay valid: ids are shared.
  auto cas = typesys::make_type("compare-and-swap");
  auto cache = std::make_shared<typesys::TransitionCache>(*cas, 3);
  const typesys::StateId q0 = cache->intern({typesys::kBottom});
  auto table = ClosedTable::build(cache);
  const ClosedTable::Entry entry = table->apply(q0, 0);
  EXPECT_EQ(cache->repr(entry.next), typesys::StateRepr{1});
}

}  // namespace
}  // namespace rcons::nvram
